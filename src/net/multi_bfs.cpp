#include "src/net/multi_bfs.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <stdexcept>

namespace qcongest::net {

namespace {

constexpr std::int32_t kTagBfsDist = 20;

/// Relaxation-based multi-source BFS. Each node keeps its best known
/// distance to every source and forwards improvements; outbound tokens are
/// prioritized by distance (smaller first), which yields the O(|S| + D)
/// schedule of [PRT12; HW12]. Late improvements re-trigger forwarding, so
/// the final distances are exact regardless of queueing delays.
class MultiBfsProgram final : public NodeProgram {
 public:
  MultiBfsProgram(const std::vector<NodeId>* sources, std::size_t depth_limit)
      : sources_(sources), depth_limit_(depth_limit) {}

  const std::vector<std::size_t>& dist() const { return dist_; }
  const std::vector<NodeId>& parent() const { return parent_; }

  void on_round(Context& ctx, const std::vector<Message>& inbox) override {
    if (ctx.round() == 0) {
      dist_.assign(sources_->size(), kUnreachable);
      parent_.assign(sources_->size(), kUnreachable);
      outbox_.resize(ctx.neighbors().size());
      for (std::size_t i = 0; i < sources_->size(); ++i) {
        if ((*sources_)[i] == ctx.id()) relax(ctx, i, 0, kUnreachable);
      }
    }
    for (const Message& m : inbox) {
      if (m.word.tag != kTagBfsDist) continue;
      relax(ctx, static_cast<std::size_t>(m.word.a),
            static_cast<std::size_t>(m.word.b), m.from);
    }
    // Send up to B queued tokens per neighbor, smallest distance first.
    // Stale entries (already improved upon) are skipped for free.
    for (std::size_t ni = 0; ni < ctx.neighbors().size(); ++ni) {
      auto& queue = outbox_[ni];
      std::size_t budget = ctx.bandwidth();
      while (!queue.empty() && budget > 0) {
        auto it = queue.begin();
        auto [d, src] = it->first;
        queue.erase(it);
        if (d != dist_[src]) continue;  // superseded by a later relaxation
        ctx.send(ctx.neighbors()[ni],
                 Word{kTagBfsDist, static_cast<std::int64_t>(src),
                      static_cast<std::int64_t>(d + 1), false});
        --budget;
      }
    }
  }

 private:
  void relax(Context& ctx, std::size_t src, std::size_t d, NodeId from) {
    if (src >= dist_.size()) throw std::logic_error("multi_bfs: bad source index");
    if (d >= dist_[src]) return;
    dist_[src] = d;
    parent_[src] = from;
    if (d >= depth_limit_) return;  // do not propagate past the depth limit
    for (std::size_t ni = 0; ni < ctx.neighbors().size(); ++ni) {
      outbox_[ni].emplace(std::pair{d, src}, 0);
    }
  }

  const std::vector<NodeId>* sources_;
  std::size_t depth_limit_;
  std::vector<std::size_t> dist_;
  std::vector<NodeId> parent_;
  // Per-neighbor priority queue keyed by (distance, source).
  std::vector<std::map<std::pair<std::size_t, std::size_t>, int>> outbox_;
};

constexpr std::int32_t kTagEchoParent = 21;
constexpr std::int32_t kTagEchoDone = 22;
constexpr std::int32_t kTagEchoMax = 23;

/// The echo phase of Lemma 20: children register with their BFS parents
/// (PARENT per source, then one DONE per edge); once a node has heard DONE
/// from every neighbor and the echoes of all its registered children for a
/// source, it forwards the subtree's distance maximum to its own parent.
/// Sources collect their eccentricities.
class EccEchoProgram final : public NodeProgram {
 public:
  EccEchoProgram(const std::vector<NodeId>* sources,
                 const std::vector<std::size_t>* dist,
                 const std::vector<NodeId>* parent)
      : sources_(sources), dist_(dist), parent_(parent) {}

  const std::vector<std::size_t>& eccentricity() const { return ecc_; }

  void on_round(Context& ctx, const std::vector<Message>& inbox) override {
    const std::size_t slots = sources_->size();
    const auto& adj = ctx.neighbors();
    if (ctx.round() == 0) {
      ecc_.assign(slots, 0);
      expected_.assign(slots, 0);
      echoed_.assign(slots, false);
      subtree_max_.assign(slots, 0);
      outbox_.resize(adj.size());
      for (std::size_t i = 0; i < slots; ++i) {
        subtree_max_[i] = (*dist_)[i] == kUnreachable ? 0 : (*dist_)[i];
        if ((*parent_)[i] != kUnreachable) {
          queue_to(ctx, (*parent_)[i],
                   Word{kTagEchoParent, static_cast<std::int64_t>(i), 0, false});
        }
      }
      for (std::size_t ni = 0; ni < adj.size(); ++ni) {
        outbox_[ni].push_back(Word{kTagEchoDone, 0, 0, false});
      }
    }
    for (const Message& m : inbox) {
      switch (m.word.tag) {
        case kTagEchoParent:
          ++expected_[static_cast<std::size_t>(m.word.a)];
          break;
        case kTagEchoDone:
          ++dones_;
          break;
        case kTagEchoMax: {
          auto slot = static_cast<std::size_t>(m.word.a);
          --expected_[slot];
          subtree_max_[slot] = std::max(
              subtree_max_[slot], static_cast<std::size_t>(m.word.b));
          break;
        }
        default:
          break;
      }
    }
    if (dones_ == adj.size()) {
      for (std::size_t i = 0; i < slots; ++i) {
        if (echoed_[i] || expected_[i] != 0) continue;
        echoed_[i] = true;
        if ((*parent_)[i] != kUnreachable) {
          queue_to(ctx, (*parent_)[i],
                   Word{kTagEchoMax, static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(subtree_max_[i]), false});
        } else if ((*sources_)[i] == ctx.id()) {
          ecc_[i] = subtree_max_[i];
        }
      }
    }
    for (std::size_t ni = 0; ni < outbox_.size(); ++ni) {
      auto& queue = outbox_[ni];
      for (std::size_t budget = ctx.bandwidth(); budget > 0 && !queue.empty();
           --budget) {
        ctx.send(adj[ni], queue.front());
        queue.pop_front();
      }
    }
  }

 private:
  void queue_to(Context& ctx, NodeId target, Word word) {
    const auto& adj = ctx.neighbors();
    auto it = std::find(adj.begin(), adj.end(), target);
    if (it == adj.end()) throw std::logic_error("ecc echo: parent not a neighbor");
    outbox_[static_cast<std::size_t>(it - adj.begin())].push_back(word);
  }

  const std::vector<NodeId>* sources_;
  const std::vector<std::size_t>* dist_;
  const std::vector<NodeId>* parent_;
  std::vector<std::size_t> ecc_;
  std::vector<std::size_t> expected_;   // registered children minus echoes seen
  std::vector<bool> echoed_;
  std::vector<std::size_t> subtree_max_;
  std::size_t dones_ = 0;
  std::vector<std::deque<Word>> outbox_;
};

}  // namespace

MultiBfsResult multi_source_bfs(Engine& engine, const std::vector<NodeId>& sources,
                                std::size_t depth_limit) {
  const std::size_t n = engine.graph().num_nodes();
  if (sources.empty()) throw std::invalid_argument("multi_source_bfs: no sources");
  for (NodeId s : sources) {
    if (s >= n) throw std::invalid_argument("multi_source_bfs: source out of range");
  }
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    programs.push_back(std::make_unique<MultiBfsProgram>(&sources, depth_limit));
  }
  MultiBfsResult result;
  std::size_t limit = 8 * (sources.size() + n) + 32;
  result.cost = engine.run(programs, limit);
  if (!result.cost.completed) throw std::logic_error("multi_source_bfs: did not finish");
  result.dist.reserve(n);
  result.parent.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    result.dist.push_back(static_cast<MultiBfsProgram&>(*programs[v]).dist());
    result.parent.push_back(static_cast<MultiBfsProgram&>(*programs[v]).parent());
  }
  return result;
}

EccentricityEchoResult multi_source_eccentricities(Engine& engine,
                                                   const std::vector<NodeId>& sources,
                                                   std::size_t depth_limit) {
  const std::size_t n = engine.graph().num_nodes();
  EccentricityEchoResult result;
  result.bfs = multi_source_bfs(engine, sources, depth_limit);

  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    programs.push_back(std::make_unique<EccEchoProgram>(
        &sources, &result.bfs.dist[v], &result.bfs.parent[v]));
  }
  std::size_t limit = 8 * (sources.size() + n) + 64;
  result.echo_cost = engine.run(programs, limit);
  if (!result.echo_cost.completed) {
    throw std::logic_error("multi_source_eccentricities: echo did not finish");
  }
  result.eccentricity.assign(sources.size(), 0);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    result.eccentricity[i] =
        static_cast<EccEchoProgram&>(*programs[sources[i]]).eccentricity()[i];
  }
  return result;
}

}  // namespace qcongest::net
