#pragma once

#include "src/net/graph.hpp"
#include "src/util/rng.hpp"

namespace qcongest::net {

/// Topology generators for experiments. All generated graphs are connected.

Graph path_graph(std::size_t n);
Graph cycle_graph(std::size_t n);
Graph complete_graph(std::size_t n);
Graph star_graph(std::size_t n);  // node 0 is the center

/// Complete binary tree with n nodes (node 0 the root).
Graph binary_tree(std::size_t n);

/// rows x cols grid.
Graph grid_graph(std::size_t rows, std::size_t cols);

/// d-dimensional hypercube (n = 2^dims nodes).
Graph hypercube(unsigned dims);

/// The Petersen graph (n = 10, girth 5) — a girth test fixture.
Graph petersen_graph();

/// Connected Erdos–Renyi-style graph: a random spanning tree plus extra
/// random edges up to ~`extra_edges` more.
Graph random_connected_graph(std::size_t n, std::size_t extra_edges, util::Rng& rng);

/// Two star graphs with `left_size` and `right_size` leaves whose centers
/// are joined by a path with `path_length` edges. The reduction gadget for
/// the two-party lower bounds (Lemmas 11, 13, 15): diameter ~ path_length+2.
Graph two_stars_graph(std::size_t left_size, std::size_t right_size,
                      std::size_t path_length);

/// A cycle of length `girth` with trees hanging off it, total n nodes —
/// a known-girth fixture for the girth benches.
Graph cycle_with_trees(std::size_t girth, std::size_t n, util::Rng& rng);

/// A path of `path_length` edges with a clique of `clique_size` nodes at one
/// end (the "lollipop"); high-degree nodes for heavy-cycle detection tests.
Graph lollipop_graph(std::size_t clique_size, std::size_t path_length);

/// Random d-regular-ish connected graph (pairing model with retries; a few
/// vertices may end up with degree d-1 when the pairing stalls). Requires
/// n * d even, d >= 2, d < n.
Graph random_regular_graph(std::size_t n, std::size_t degree, util::Rng& rng);

/// "Caveman" community graph: `communities` cliques of `clique_size` nodes
/// arranged in a ring, adjacent cliques joined by one edge. Low conductance,
/// small diameter within communities — a realistic clustered topology.
Graph caveman_graph(std::size_t communities, std::size_t clique_size);

/// Balanced tree of given branching factor and depth.
Graph balanced_tree(std::size_t branching, std::size_t depth);

}  // namespace qcongest::net
