#include "src/net/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/net/reliable.hpp"
#include "src/net/trace.hpp"
#include "src/net/violation.hpp"

namespace qcongest::net {

std::size_t Context::num_nodes() const { return engine_->graph().num_nodes(); }

std::size_t Context::bandwidth() const { return engine_->bandwidth(); }

const std::vector<NodeId>& Context::neighbors() const {
  return engine_->graph().neighbors(id_);
}

void Context::send(NodeId to, Word word) { engine_->deliver(id_, to, word); }

Engine::Engine(const Graph& graph, std::size_t bandwidth_words, std::uint64_t seed)
    : graph_(&graph), bandwidth_(bandwidth_words), seed_rng_(seed) {
  if (bandwidth_ == 0) throw std::invalid_argument("Engine: bandwidth 0");
  node_rngs_.reserve(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) node_rngs_.push_back(seed_rng_.fork());

  // Directed-edge slots for bandwidth accounting: node v's i-th neighbor
  // edge occupies slot edge_slot_offset_[v] + i.
  edge_slot_offset_.resize(graph.num_nodes() + 1, 0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    edge_slot_offset_[v + 1] = edge_slot_offset_[v] + graph.degree(v);
  }
}

void Engine::track_cut(std::vector<bool> side) {
  if (!side.empty() && side.size() != graph_->num_nodes()) {
    throw std::invalid_argument("track_cut: one side bit per node required");
  }
  cut_side_ = std::move(side);
}

void Engine::set_fault_plan(FaultPlan plan) {
  plan.validate(graph_->num_nodes());
  fault_plan_ = std::move(plan);
  fault_active_ = fault_plan_.active();
  edge_rates_.clear();
  crash_schedule_.clear();
  if (!fault_active_) return;

  edge_rates_.assign(edge_slot_offset_[graph_->num_nodes()], fault_plan_.link);
  for (const auto& [edge, rates] : fault_plan_.edge_overrides) {
    if (!graph_->has_edge(edge.first, edge.second)) {
      throw std::invalid_argument("FaultPlan: override on a non-edge");
    }
    edge_rates_[edge_slot(edge.first, edge.second)] = rates;
  }
  crash_schedule_.assign(graph_->num_nodes(), {});
  for (const CrashEvent& c : fault_plan_.crashes) crash_schedule_[c.node].push_back(c);
  fault_rng_ = util::Rng(fault_plan_.seed);
}

void Engine::clear_fault_plan() {
  fault_plan_ = FaultPlan{};
  fault_active_ = false;
  edge_rates_.clear();
  crash_schedule_.clear();
}

void Engine::set_transport(Transport transport, ReliableParams params) {
  if (params.window == 0 || params.rto_rounds == 0 || params.round_stretch == 0) {
    throw std::invalid_argument("ReliableParams: window/rto/stretch must be positive");
  }
  transport_ = transport;
  reliable_params_ = params;
}

std::size_t Engine::edge_slot(NodeId from, NodeId to) const {
  const auto& adj = graph_->neighbors(from);
  auto it = std::find(adj.begin(), adj.end(), to);
  if (it == adj.end()) {
    throw CongestViolation(CongestViolation::Kind::kNonNeighborSend, current_pass_,
                           from, to, /*words_attempted=*/1, bandwidth_);
  }
  return edge_slot_offset_[from] + static_cast<std::size_t>(it - adj.begin());
}

bool Engine::crashed_at(NodeId node, std::size_t round) const {
  if (crash_schedule_.empty()) return false;
  for (const CrashEvent& c : crash_schedule_[node]) {
    if (round >= c.crash_round && round < c.restart_round) return true;
  }
  return false;
}

bool Engine::restart_pending(std::size_t round) const {
  if (crash_schedule_.empty()) return false;
  for (const auto& events : crash_schedule_) {
    for (const CrashEvent& c : events) {
      if (c.restart_round == CrashEvent::kNeverRestarts) continue;
      // <= restart_round: the node must get its first post-outage round
      // before quiescence may end the run, or a scheduled restart could be
      // silently skipped.
      if (round >= c.crash_round && round <= c.restart_round) return true;
    }
  }
  return false;
}

void Engine::corrupt_payload(Word& word) {
  // Flip exactly one uniformly random bit of the 128 payload bits. The tag
  // is never corrupted (headers are assumed protected by heavier coding).
  std::size_t bit = fault_rng_.index(128);
  auto flip = [](std::int64_t v, unsigned b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(v) ^ (1ULL << b));
  };
  if (bit < 64) {
    word.a = flip(word.a, static_cast<unsigned>(bit));
  } else {
    word.b = flip(word.b, static_cast<unsigned>(bit - 64));
  }
}

void Engine::deliver(NodeId from, NodeId to, Word word) {
  if (from != current_sender_) {
    throw std::logic_error("Engine: context used outside its node's turn");
  }
  std::size_t slot = edge_slot(from, to);
  if (sent_this_round_[slot] >= bandwidth_) {
    throw CongestViolation(CongestViolation::Kind::kBandwidthExceeded, current_pass_,
                           from, to, sent_this_round_[slot] + 1, bandwidth_);
  }
  ++sent_this_round_[slot];
  stats_.max_edge_words = std::max(stats_.max_edge_words, sent_this_round_[slot]);
  if (!cut_side_.empty() && cut_side_[from] != cut_side_[to]) ++stats_.cut_words;
  if (trace_ != nullptr) {
    trace_->record(TraceEvent{current_pass_, from, to, word.tag, word.quantum});
  }
  ++stats_.messages;
  if (word.quantum) {
    ++stats_.quantum_words;
  } else {
    ++stats_.classical_words;
  }
  if (observer_ != nullptr) {
    observer_->on_send(current_pass_, from, to, word, sent_this_round_[slot]);
  }

  if (!fault_active_) {
    next_inbox_[to].push_back(Message{from, word});
    if (observer_ != nullptr) {
      observer_->on_delivery(current_pass_, from, to, DeliveryFate::kDelivered,
                             /*corrupted=*/false, /*duplicated=*/false);
    }
    return;
  }

  // Fault lottery. Sends are counted above regardless of fate, so a plan
  // with all-zero rates leaves every legacy counter byte-identical
  // (Rng::bernoulli(0) draws nothing from the fault stream).
  std::size_t arrival_round = current_pass_ + 1;
  if (crashed_at(to, arrival_round)) {
    ++stats_.dropped_words;
    if (observer_ != nullptr) {
      observer_->on_delivery(current_pass_, from, to, DeliveryFate::kDroppedCrashed,
                             false, false);
    }
    return;
  }
  const FaultRates& rates = edge_rates_[slot];
  if (fault_rng_.bernoulli(rates.drop)) {
    ++stats_.dropped_words;
    if (observer_ != nullptr) {
      observer_->on_delivery(current_pass_, from, to, DeliveryFate::kDroppedLottery,
                             false, false);
    }
    return;
  }
  Word delivered = word;
  bool corrupted = false;
  if (fault_rng_.bernoulli(rates.corrupt)) {
    corrupt_payload(delivered);
    ++stats_.corrupted_words;
    corrupted = true;
  }
  next_inbox_[to].push_back(Message{from, delivered});
  bool duplicated = false;
  if (fault_rng_.bernoulli(rates.duplicate)) {
    // The network, not the sender, duplicates: the extra copy is charged to
    // no edge budget and appears only in duplicated_words.
    next_inbox_[to].push_back(Message{from, delivered});
    ++stats_.duplicated_words;
    duplicated = true;
  }
  if (observer_ != nullptr) {
    observer_->on_delivery(current_pass_, from, to, DeliveryFate::kDelivered,
                           corrupted, duplicated);
  }
}

RunResult Engine::run(std::span<const std::unique_ptr<NodeProgram>> programs,
                      std::size_t max_rounds) {
  if (transport_ != Transport::kReliable) return run_direct(programs, max_rounds);
  // The reliable link layer needs extra physical rounds per virtual round
  // (frame chunking, acks, fences, retransmissions); stretch the budget so
  // callers keep passing their protocol-level round limits unchanged.
  std::size_t stretch = reliable_params_.round_stretch;
  std::size_t budget = max_rounds < static_cast<std::size_t>(-1) / stretch
                           ? max_rounds * stretch + reliable_params_.round_slack
                           : static_cast<std::size_t>(-1);
  auto wrapped = wrap_reliable(programs, *this, reliable_params_);
  return run_direct(wrapped, budget);
}

RunResult Engine::run_direct(std::span<const std::unique_ptr<NodeProgram>> programs,
                             std::size_t max_rounds) {
  const std::size_t n = graph_->num_nodes();
  if (programs.size() != n) {
    throw std::invalid_argument("Engine::run: one program per node required");
  }
  stats_ = RunResult{};
  next_inbox_.assign(n, {});
  sent_this_round_.assign(edge_slot_offset_[n], 0);
  if (observer_ != nullptr) observer_->on_run_begin(*this);

  std::vector<Context> contexts(n);
  for (NodeId v = 0; v < n; ++v) {
    contexts[v].engine_ = this;
    contexts[v].id_ = v;
    contexts[v].rng_ = &node_rngs_[v];
  }
  std::vector<bool> was_crashed(fault_active_ ? n : 0, false);

  // Pass r delivers the words sent in pass r-1 (synchronous rounds). The
  // protocol's round complexity is the index of the last pass that sent
  // anything: a CONGEST round is a send plus its matching receive.
  //
  // Termination: (a) every node halted with nothing in flight, or (b)
  // quiescence — nothing was delivered this pass after the first, no
  // program asked to be kept alive (Context::keep_alive) in the previous
  // pass, and no crashed node is still waiting to restart. For
  // event-driven programs (the only kind the protocol library uses)
  // quiescence means nothing will ever happen again; programs that idle
  // intending to act later must call keep_alive every idle round.
  std::size_t last_send_pass = 0;
  bool keep_alive_pending = false;
  bool sent_last_pass = false;
  for (std::size_t pass = 1; pass <= max_rounds + 1; ++pass) {
    std::vector<std::vector<Message>> inbox(n);
    inbox.swap(next_inbox_);
    next_inbox_.assign(n, {});
    std::fill(sent_this_round_.begin(), sent_this_round_.end(), 0);

    const std::size_t round = pass - 1;
    bool all_halted = true;
    bool any_inbox = false;
    for (NodeId v = 0; v < n; ++v) {
      if (!inbox[v].empty()) any_inbox = true;
      if (!contexts[v].halted_) all_halted = false;
    }
    // sent_last_pass matters only under faults: without them every send
    // becomes a delivery, so any_inbox covers it. With drops, a node whose
    // every word was lost still transmitted — it must stay scheduled.
    if ((all_halted || pass > 1) && !any_inbox && !sent_last_pass &&
        !keep_alive_pending && !(fault_active_ && restart_pending(round))) {
      stats_.rounds = last_send_pass;
      stats_.completed = true;
      if (observer_ != nullptr) observer_->on_run_end(stats_);
      return stats_;
    }

    current_pass_ = round;
    keep_alive_pending = false;
    std::size_t messages_before = stats_.messages;
    for (NodeId v = 0; v < n; ++v) {
      if (fault_active_ && !crash_schedule_.empty()) {
        bool crashed = crashed_at(v, round);
        if (crashed && !was_crashed[v]) ++stats_.crashed_nodes;
        was_crashed[v] = crashed;
        if (crashed) {
          // Words addressed to a crashed node were already dropped at
          // delivery time; the node simply is not scheduled.
          continue;
        }
      }
      if (contexts[v].halted_) {
        if (!inbox[v].empty()) {
          throw std::logic_error("Engine: message delivered to a halted node");
        }
        continue;
      }
      contexts[v].round_ = round;
      contexts[v].keep_alive_ = false;
      current_sender_ = v;
      programs[v]->on_round(contexts[v], inbox[v]);
      if (contexts[v].keep_alive_) keep_alive_pending = true;
    }
    sent_last_pass = stats_.messages > messages_before;
    if (sent_last_pass) last_send_pass = pass;
    if (observer_ != nullptr) observer_->on_round_end(round);
  }
  stats_.rounds = last_send_pass;
  stats_.completed = false;
  if (observer_ != nullptr) observer_->on_run_end(stats_);
  return stats_;
}

}  // namespace qcongest::net
