#include "src/net/engine.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "src/net/reliable.hpp"
#include "src/net/trace.hpp"
#include "src/net/violation.hpp"

namespace qcongest::net {

void Context::send(NodeId to, Word word) { engine_->deliver(id_, to, word); }

Engine::Engine(const Graph& graph, std::size_t bandwidth_words, std::uint64_t seed)
    : graph_(&graph), bandwidth_(bandwidth_words), seed_rng_(seed) {
  if (bandwidth_ == 0) throw std::invalid_argument("Engine: bandwidth 0");
  node_rngs_.reserve(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) node_rngs_.push_back(seed_rng_.fork());

  // Directed-edge slots for bandwidth accounting: node v's i-th neighbor
  // edge occupies slot edge_slot_offset_[v] + i.
  edge_slot_offset_.resize(graph.num_nodes() + 1, 0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    edge_slot_offset_[v + 1] = edge_slot_offset_[v] + graph.degree(v);
  }
}

void Engine::track_cut(std::vector<bool> side) {
  if (!side.empty() && side.size() != graph_->num_nodes()) {
    throw std::invalid_argument("track_cut: one side bit per node required");
  }
  cut_side_ = std::move(side);
}

void Engine::set_fault_plan(FaultPlan plan) {
  plan.validate(graph_->num_nodes());
  fault_plan_ = std::move(plan);
  fault_active_ = fault_plan_.active();
  edge_rates_.clear();
  crash_schedule_.clear();
  crash_nodes_.clear();
  restart_windows_.clear();
  restart_prefix_max_.clear();
  edge_thresholds_.clear();
  fault_lottery_.clear();
  if (!fault_active_) return;

  const std::size_t n = graph_->num_nodes();
  edge_rates_.assign(edge_slot_offset_[n], fault_plan_.link);
  for (const auto& [edge, rates] : fault_plan_.edge_overrides) {
    if (!graph_->has_edge(edge.first, edge.second)) {
      throw std::invalid_argument("FaultPlan: override on a non-edge");
    }
    edge_rates_[edge_slot(edge.first, edge.second)] = rates;
  }

  crash_schedule_.assign(n, {});
  amnesia_restarts_.assign(n, {});
  for (const CrashEvent& c : fault_plan_.crashes) {
    if (crash_schedule_[c.node].empty()) crash_nodes_.push_back(c.node);
    crash_schedule_[c.node].push_back(c);
    if (c.restart_round != CrashEvent::kNeverRestarts) {
      restart_windows_.emplace_back(c.crash_round, c.restart_round);
      if (c.amnesia) amnesia_restarts_[c.node].push_back(c.restart_round);
    }
  }
  for (auto& rounds : amnesia_restarts_) std::sort(rounds.begin(), rounds.end());
  std::sort(crash_nodes_.begin(), crash_nodes_.end());
  // Per-node events sorted by crash start, with restart_round replaced by a
  // running max: "crashed at r" becomes one binary search for the last
  // window starting at or before r. The running max keeps the answer
  // correct even for overlapping windows (equivalent to OR-ing them all).
  for (auto& events : crash_schedule_) {
    std::sort(events.begin(), events.end(),
              [](const CrashEvent& a, const CrashEvent& b) {
                return a.crash_round < b.crash_round;
              });
    std::size_t running = 0;
    for (CrashEvent& c : events) {
      running = std::max(running, c.restart_round);
      c.restart_round = running;
    }
  }
  // Same trick globally for restart_pending: finite-restart windows sorted
  // by crash start plus a prefix max of restart rounds.
  std::sort(restart_windows_.begin(), restart_windows_.end());
  restart_prefix_max_.reserve(restart_windows_.size());
  std::size_t running = 0;
  for (const auto& [crash_round, restart_round] : restart_windows_) {
    running = std::max(running, restart_round);
    restart_prefix_max_.push_back(running);
  }

  // One independent lottery stream per directed edge, forked in slot order
  // from the plan seed (see FaultLottery). Rates compile down to fixed-point
  // thresholds once, here, so the delivery loop never touches a double.
  edge_thresholds_.clear();
  edge_thresholds_.reserve(edge_slot_offset_[n]);
  for (const FaultRates& rates : edge_rates_) {
    edge_thresholds_.push_back({FaultLottery::threshold(rates.drop),
                                FaultLottery::threshold(rates.corrupt),
                                FaultLottery::threshold(rates.duplicate)});
  }
  fault_lottery_.reset(fault_plan_.seed, edge_slot_offset_[n]);
}

void Engine::clear_fault_plan() {
  fault_plan_ = FaultPlan{};
  fault_active_ = false;
  edge_rates_.clear();
  crash_schedule_.clear();
  crash_nodes_.clear();
  restart_windows_.clear();
  restart_prefix_max_.clear();
  edge_thresholds_.clear();
  fault_lottery_.clear();
  amnesia_restarts_.clear();
}

void Engine::set_transport(Transport transport, ReliableParams params) {
  if (params.window == 0 || params.rto_rounds == 0 || params.round_stretch == 0) {
    throw std::invalid_argument("ReliableParams: window/rto/stretch must be positive");
  }
  transport_ = transport;
  reliable_params_ = params;
}

void Engine::set_threads(std::size_t threads) {
  threads_ = threads == 0 ? 1 : threads;
  if (threads_ == 1) pool_.reset();
}

std::size_t Engine::edge_slot(NodeId from, NodeId to) const {
  std::size_t index = graph_->neighbor_index(from, to);
  if (index == kUnreachable) {
    throw CongestViolation(CongestViolation::Kind::kNonNeighborSend, current_pass_,
                           from, to, /*words_attempted=*/1, bandwidth_);
  }
  return edge_slot_offset_[from] + index;
}

bool Engine::crashed_at(NodeId node, std::size_t round) const {
  if (crash_schedule_.empty()) return false;
  const auto& events = crash_schedule_[node];
  auto it = std::upper_bound(events.begin(), events.end(), round,
                             [](std::size_t r, const CrashEvent& c) {
                               return r < c.crash_round;
                             });
  if (it == events.begin()) return false;
  // restart_round holds the running max over all windows starting earlier
  // (see set_fault_plan), so this single check covers them all.
  return round < std::prev(it)->restart_round;
}

bool Engine::restart_pending(std::size_t round) const {
  if (restart_windows_.empty()) return false;
  // Windows with crash_round <= round are the prefix [begin, it).
  auto it = std::upper_bound(
      restart_windows_.begin(), restart_windows_.end(),
      std::make_pair(round, static_cast<std::size_t>(-1)));
  if (it == restart_windows_.begin()) return false;
  std::size_t idx = static_cast<std::size_t>(it - restart_windows_.begin()) - 1;
  // <= restart_round: the node must get its first post-outage round before
  // quiescence may end the run, or a scheduled restart could be silently
  // skipped.
  return restart_prefix_max_[idx] >= round;
}

void Engine::corrupt_payload(Word& word, std::uint64_t raw) {
  // Flip exactly one uniformly random bit of the 128 payload bits. The tag
  // is never corrupted (headers are assumed protected by heavier coding).
  // 128 divides 2^64, so masking the raw lottery draw is exactly uniform.
  std::size_t bit = raw & 127;
  auto flip = [](std::int64_t v, unsigned b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(v) ^ (1ULL << b));
  };
  if (bit < 64) {
    word.a = flip(word.a, static_cast<unsigned>(bit));
  } else {
    word.b = flip(word.b, static_cast<unsigned>(bit - 64));
  }
}

std::size_t Engine::admit(NodeId from, NodeId to) {
  std::size_t slot = edge_slot(from, to);
  if (sent_this_round_[slot] >= bandwidth_) {
    throw CongestViolation(CongestViolation::Kind::kBandwidthExceeded, current_pass_,
                           from, to, sent_this_round_[slot] + 1, bandwidth_);
  }
  ++sent_this_round_[slot];
  return slot;
}

void Engine::deliver(NodeId from, NodeId to, Word word) {
  if (parallel_pass_) {
    // Shard path: admission (bandwidth enforcement) happens here in the
    // sender's shard — each directed edge's budget is touched only by its
    // own sender, so this is race-free — while everything observable
    // (stats, trace, observer, fault lottery, inbox push) waits for the
    // canonical-order merge on the engine thread. Each shard buffer is
    // touched only by the one worker executing that shard.
    std::size_t slot = admit(from, to);
    shard_sends_[shard_of_node_[from]].push_back(
        PendingSend{to, word, slot, sent_this_round_[slot]});
    return;
  }
  if (from != current_sender_) {
    throw std::logic_error("Engine: context used outside its node's turn");
  }
  std::size_t slot = admit(from, to);
  const std::size_t edge_words = sent_this_round_[slot];
  if (fast_path_) {
    // Serial no-fault, no-observer shape (the benchmark steady state): the
    // full commit bookkeeping collapses to counters plus the inbox append.
    if (edge_words > stats_.max_edge_words) stats_.max_edge_words = edge_words;
    ++stats_.messages;
    if (word.quantum) {
      ++stats_.quantum_words;
    } else {
      ++stats_.classical_words;
    }
    if (contexts_[to].halted_) {
      throw std::logic_error("Engine: message delivered to a halted node");
    }
    enqueue_delivery(to, Message{from, word});
    delivered_any_ = true;
    return;
  }
  commit(from, to, word, slot, edge_words);
}

void Engine::commit(NodeId from, NodeId to, const Word& word, std::size_t slot,
                    std::size_t edge_words) {
  stats_.max_edge_words = std::max(stats_.max_edge_words, edge_words);
  if (!cut_side_.empty() && cut_side_[from] != cut_side_[to]) ++stats_.cut_words;
  if (trace_ != nullptr) {
    trace_->record(TraceEvent{current_pass_, from, to, word.tag, word.quantum});
  }
  ++stats_.messages;
  if (word.quantum) {
    ++stats_.quantum_words;
  } else {
    ++stats_.classical_words;
  }
  if (observer_ != nullptr) {
    observer_->on_send(current_pass_, from, to, word, edge_words);
  }

  if (!fault_active_) {
    if (contexts_[to].halted_) {
      throw std::logic_error("Engine: message delivered to a halted node");
    }
    enqueue_delivery(to, Message{from, word});
    delivered_any_ = true;
    if (observer_ != nullptr) {
      observer_->on_delivery(current_pass_, from, to, DeliveryFate::kDelivered,
                             /*corrupted=*/false, /*duplicated=*/false);
    }
    return;
  }

  // Fault lottery. Sends are counted above regardless of fate, so a plan
  // with all-zero rates leaves every legacy counter byte-identical (a
  // kNever threshold draws nothing from the fault stream).
  if (crashed_arrival_[to] != 0) {
    ++stats_.dropped_words;
    if (observer_ != nullptr) {
      observer_->on_delivery(current_pass_, from, to, DeliveryFate::kDroppedCrashed,
                             false, false);
    }
    return;
  }
  const EdgeThresholds& th = edge_thresholds_[slot];
  if (fault_lottery_.draw(slot, th.drop)) {
    ++stats_.dropped_words;
    if (observer_ != nullptr) {
      observer_->on_delivery(current_pass_, from, to, DeliveryFate::kDroppedLottery,
                             false, false);
    }
    return;
  }
  Word delivered = word;
  bool corrupted = false;
  if (fault_lottery_.draw(slot, th.corrupt)) {
    corrupt_payload(delivered, fault_lottery_.draw_raw(slot));
    ++stats_.corrupted_words;
    corrupted = true;
  }
  if (contexts_[to].halted_) {
    throw std::logic_error("Engine: message delivered to a halted node");
  }
  enqueue_delivery(to, Message{from, delivered});
  delivered_any_ = true;
  bool duplicated = false;
  if (fault_lottery_.draw(slot, th.duplicate)) {
    // The network, not the sender, duplicates: the extra copy is charged to
    // no edge budget and appears only in duplicated_words.
    enqueue_delivery(to, Message{from, delivered});
    ++stats_.duplicated_words;
    duplicated = true;
  }
  if (observer_ != nullptr) {
    observer_->on_delivery(current_pass_, from, to, DeliveryFate::kDelivered,
                           corrupted, duplicated);
  }
}

RunResult Engine::run(std::span<const std::unique_ptr<NodeProgram>> programs,
                      std::size_t max_rounds) {
  // The program factory captures the calling protocol function's locals;
  // drop it on every exit path so it can never dangle into the next run.
  struct FactoryGuard {
    Engine* engine;
    ~FactoryGuard() { engine->program_factory_ = nullptr; }
  } factory_guard{this};
  if (transport_ != Transport::kReliable) return run_direct(programs, max_rounds);
  // The reliable link layer needs extra physical rounds per virtual round
  // (frame chunking, acks, fences, retransmissions); stretch the budget so
  // callers keep passing their protocol-level round limits unchanged.
  std::size_t stretch = reliable_params_.round_stretch;
  std::size_t budget = max_rounds < static_cast<std::size_t>(-1) / stretch
                           ? max_rounds * stretch + reliable_params_.round_slack
                           : static_cast<std::size_t>(-1);
  auto wrapped = wrap_reliable(programs, *this, reliable_params_);
  return run_direct(wrapped, budget);
}

RunResult Engine::run_direct(std::span<const std::unique_ptr<NodeProgram>> programs,
                             std::size_t max_rounds) {
  const std::size_t n = graph_->num_nodes();
  if (programs.size() != n) {
    throw std::invalid_argument("Engine::run: one program per node required");
  }
  stats_ = RunResult{};

  // The reliable transport's link adapters mutate shared engine state from
  // inside on_round (note_retransmission), so its runs stay serial; see
  // DESIGN.md "Execution model".
  const bool parallel = threads_ > 1 && transport_ == Transport::kDirect && n > 1;
  if (parallel && (pool_ == nullptr || pool_->threads() != threads_)) {
    pool_ = std::make_unique<util::ThreadPool>(threads_);
  }

  // All per-run buffers persist across passes and runs (the arenas recycle
  // their blocks), so the steady-state hot loop allocates nothing.
  inbox_offset_.assign(n, 0);
  inbox_len_.assign(n, 0);
  scatter_cursor_.resize(n);
  inbox_touched_.reserve(n);
  runnable_.reserve(n);
  reset_delivery_buffers();
  sent_this_round_.assign(edge_slot_offset_[n], 0);
  contexts_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    Context& ctx = contexts_[v];
    ctx.engine_ = this;
    ctx.id_ = v;
    ctx.round_ = 0;
    ctx.rng_ = &node_rngs_[v];
    ctx.halted_ = false;
    ctx.keep_alive_ = false;
  }
  active_.resize(n);
  for (NodeId v = 0; v < n; ++v) active_[v] = v;
  const bool crash_active = fault_active_ && !crash_nodes_.empty();
  if (fault_active_) {
    was_crashed_.assign(n, 0);
    crashed_now_.assign(n, 0);
    crashed_arrival_.assign(n, 0);
  }
  if (crash_active) {
    amnesia_dead_.assign(n, 0);
    amnesia_cursor_.assign(n, 0);
  }
  // Checkpoints never outlive their run: each framework phase (= one engine
  // run) recovers within itself.
  if (recovery_.enabled) checkpoint_store_.reset(n);
  recovery_activity_ = false;
  delivered_any_ = false;
  parallel_pass_ = false;
  keep_alive_pending_ = false;
  // Frozen per run: nothing a program can reach through its Context mutates
  // the observer, trace, cut, or fault plan mid-run.
  fast_path_ = !fault_active_ && observer_ == nullptr && trace_ == nullptr &&
               cut_side_.empty();
  if (observer_ != nullptr) observer_->on_run_begin(*this);
  if (recovery_.enabled && recovery_.checkpoint.at_phase_start) {
    write_checkpoints(programs, /*rounds_done=*/0);
  }

  // Pass r delivers the words sent in pass r-1 (synchronous rounds). The
  // protocol's round complexity is the index of the last pass that sent
  // anything: a CONGEST round is a send plus its matching receive.
  //
  // Termination: (a) every node halted with nothing in flight, or (b)
  // quiescence — nothing was delivered this pass after the first, no
  // program asked to be kept alive (Context::keep_alive) in the previous
  // pass, and no crashed node is still waiting to restart. For
  // event-driven programs (the only kind the protocol library uses)
  // quiescence means nothing will ever happen again; programs that idle
  // intending to act later must call keep_alive every idle round.
  std::size_t last_send_pass = 0;
  bool sent_last_pass = false;
  for (std::size_t pass = 1; pass <= max_rounds + 1; ++pass) {
    scatter_inboxes();
    std::fill(sent_this_round_.begin(), sent_this_round_.end(), 0);

    const std::size_t round = pass - 1;
    const bool any_inbox = delivered_any_;
    delivered_any_ = false;

    // Drop newly halted nodes from the schedule. A word can land in a
    // halted node's inbox only when the receiver halted later in the same
    // pass as the send (commit catches the already-halted case), so this is
    // the one place left that must police stray deliveries.
    std::size_t keep = 0;
    for (NodeId v : active_) {
      if (contexts_[v].halted_) {
        if (inbox_len_[v] != 0) {
          throw std::logic_error("Engine: message delivered to a halted node");
        }
        continue;
      }
      active_[keep++] = v;
    }
    active_.resize(keep);
    const bool all_halted = active_.empty();

    // sent_last_pass matters only under faults: without them every send
    // becomes a delivery, so any_inbox covers it. With drops, a node whose
    // every word was lost still transmitted — it must stay scheduled.
    if ((all_halted || pass > 1) && !any_inbox && !sent_last_pass &&
        !keep_alive_pending_ && !(fault_active_ && restart_pending(round))) {
      stats_.rounds = last_send_pass;
      stats_.completed = true;
      if (observer_ != nullptr) observer_->on_run_end(stats_);
      return stats_;
    }

    if (crash_active) {
      // Only nodes with crash events can ever transition; everyone else's
      // flags stay false for the whole run.
      for (NodeId v : crash_nodes_) {
        bool crashed = crashed_at(v, round);
        if (crashed && was_crashed_[v] == 0) ++stats_.crashed_nodes;
        if (!crashed && was_crashed_[v] != 0 && amnesia_dead_[v] == 0) {
          // The node is restarting this round. If any amnesia window ended
          // inside the outage it just left (adjacent windows merge into one
          // observed outage), its volatile state is gone now.
          auto& cursor = amnesia_cursor_[v];
          const auto& wipes = amnesia_restarts_[v];
          bool wiped = false;
          while (cursor < wipes.size() && wipes[cursor] <= round) {
            wiped = true;
            ++cursor;
          }
          if (wiped) handle_amnesia_restart(*programs[v], v, round);
        }
        if (amnesia_dead_[v] != 0) crashed = true;
        was_crashed_[v] = crashed ? 1 : 0;
        crashed_now_[v] = crashed ? 1 : 0;
        crashed_arrival_[v] =
            (crashed_at(v, round + 1) || amnesia_dead_[v] != 0) ? 1 : 0;
      }
    }

    current_pass_ = round;
    keep_alive_pending_ = false;
    const std::size_t messages_before = stats_.messages;
    if (parallel) {
      run_pass_parallel(programs, round, crash_active);
    } else {
      run_pass_serial(programs, round, crash_active);
    }
    sent_last_pass = stats_.messages > messages_before;
    if (sent_last_pass) last_send_pass = pass;
    if (recovery_.enabled && transport_ == Transport::kDirect &&
        recovery_.checkpoint.due(pass)) {
      write_checkpoints(programs, /*rounds_done=*/pass);
    }
    if (recovery_activity_) {
      ++stats_.recovery_rounds;
      recovery_activity_ = false;
    }
    if (observer_ != nullptr) observer_->on_round_end(round);
  }
  stats_.rounds = last_send_pass;
  stats_.completed = false;
  if (observer_ != nullptr) observer_->on_run_end(stats_);
  return stats_;
}

void Engine::handle_amnesia_restart(NodeProgram& program, NodeId v, std::size_t round) {
  // First offer: the outermost program may own the wipe (the reliable
  // transport adapter reconstructs its inner program and catches up via
  // neighbor-assisted state transfer, src/net/reliable.cpp). The program
  // reports its own recovery activity, so an "I had nothing to lose" true
  // does not inflate the recovery tax.
  if (program.on_amnesia_restart(round)) return;
  if (recovery_.enabled && program_factory_ != nullptr &&
      transport_ == Transport::kDirect) {
    // Direct-transport path: destroy-and-reconstruct by state transplant — a
    // factory-fresh program's serialized (round-0) state overwrites the
    // scheduled object, then the latest checkpoint rolls it forward. The
    // direct transport keeps no send logs, so the rounds between that
    // checkpoint and the crash are accepted as bounded rollback
    // (DESIGN.md §11).
    std::unique_ptr<NodeProgram> fresh = program_factory_(v);
    std::vector<std::int64_t> words;
    if (fresh != nullptr && fresh->snapshot(words) &&
        program.restore(fresh->state_version(), words)) {
      const recover::Snapshot* snap = checkpoint_store_.latest(v);
      if (snap == nullptr) {
        note_recovery_activity();  // recovered to phase-start state
        return;
      }
      if (snap->intact() && program.restore(snap->version, snap->words)) {
        note_recovery_activity();
        return;
      }
    }
  }
  // No recovery path: the restart leaves the node effectively crash-stopped
  // (it keeps dropping arrivals and is never scheduled again). Words already
  // in flight toward the restart round were committed before the death was
  // known — drop them here so the counters match a crash-stop exactly.
  amnesia_dead_[v] = 1;
  for (const Message& m : inbox_span(v)) {
    ++stats_.dropped_words;
    if (observer_ != nullptr) {
      observer_->on_delivery(round, m.from, v, DeliveryFate::kDroppedCrashed,
                             /*corrupted=*/false, /*duplicated=*/false);
    }
  }
  inbox_len_[v] = 0;
}

void Engine::write_checkpoints(std::span<const std::unique_ptr<NodeProgram>> programs,
                               std::size_t rounds_done) {
  const bool crash_active = fault_active_ && !crash_nodes_.empty();
  std::vector<std::int64_t> words;
  for (NodeId v : active_) {
    // A crashed node did not execute this round; its previous checkpoint is
    // still the honest one.
    if (crash_active && crashed_now_[v] != 0) continue;
    words.clear();
    if (!programs[v]->snapshot(words)) continue;  // program opted out
    recover::Snapshot snap;
    snap.version = programs[v]->state_version();
    snap.round = rounds_done;
    snap.words = words;
    checkpoint_store_.put(v, std::move(snap));
  }
}

void Engine::run_pass_serial(std::span<const std::unique_ptr<NodeProgram>> programs,
                             std::size_t round, bool crash_active) {
  for (NodeId v : active_) {
    // Words addressed to a crashed node were already dropped at delivery
    // time; the node simply is not scheduled.
    if (crash_active && crashed_now_[v] != 0) continue;
    Context& ctx = contexts_[v];
    ctx.round_ = round;
    ctx.keep_alive_ = false;
    current_sender_ = v;
    programs[v]->on_round(ctx, inbox_span(v));
    if (ctx.keep_alive_) keep_alive_pending_ = true;
  }
}

void Engine::run_pass_parallel(std::span<const std::unique_ptr<NodeProgram>> programs,
                               std::size_t round, bool crash_active) {
  const std::size_t n = graph_->num_nodes();
  runnable_.clear();
  for (NodeId v : active_) {
    if (crash_active && crashed_now_[v] != 0) continue;
    runnable_.push_back(v);
  }
  const std::size_t count = runnable_.size();
  if (count == 0) return;

  for (NodeId v : runnable_) {
    Context& ctx = contexts_[v];
    ctx.round_ = round;
    ctx.keep_alive_ = false;
  }

  // Contiguous shards over the ascending runnable list, sized by measured
  // per-node delivery counts: a node's pass cost tracks the messages it
  // must consume, not its mere existence, so equal-node shards starve some
  // workers while one drags (the old p:32 > p:1 cliff). Weights are a
  // deterministic function of this pass's deliveries, and shard boundaries
  // only move work between workers — the merge below restores canonical
  // order regardless.
  const std::size_t shards = std::min(pool_->threads(), count);
  shard_weights_.resize(count);
  std::size_t total_weight = 0;
  for (std::size_t i = 0; i < count; ++i) {
    total_weight += 1 + inbox_len_[runnable_[i]];
    shard_weights_[i] = total_weight;  // inclusive prefix sum
  }
  shard_bounds_.resize(shards + 1);
  shard_bounds_[0] = 0;
  {
    std::size_t idx = 0;
    for (std::size_t s = 1; s < shards; ++s) {
      const std::size_t target = total_weight * s / shards;
      while (idx < count && shard_weights_[idx] < target) ++idx;
      // Clamp so every shard keeps at least one node.
      idx = std::max(idx, shard_bounds_[s - 1] + 1);
      idx = std::min(idx, count - (shards - s));
      shard_bounds_[s] = idx;
    }
  }
  shard_bounds_[shards] = count;

  if (shard_sends_.size() < shards) shard_sends_.resize(shards);
  if (shard_of_node_.size() < n) shard_of_node_.resize(n);
  if (outbox_off_.size() < n) {
    outbox_off_.resize(n);
    outbox_len_.resize(n);
  }
  for (std::size_t s = 0; s < shards; ++s) {
    shard_sends_[s].clear();
    for (std::size_t i = shard_bounds_[s]; i < shard_bounds_[s + 1]; ++i) {
      shard_of_node_[runnable_[i]] = static_cast<std::uint32_t>(s);
    }
  }

  // Workers only touch sender-owned state (their nodes' contexts, rngs,
  // inbox spans, shard buffer, and directed-edge budgets), so shards never
  // race; everything observable is replayed below in canonical order.
  std::vector<std::pair<NodeId, std::exception_ptr>> shard_error(shards);
  parallel_pass_ = true;
  pool_->parallel_for(shards, [&](std::size_t s) {
    std::vector<PendingSend>& sends = shard_sends_[s];
    for (std::size_t i = shard_bounds_[s]; i < shard_bounds_[s + 1]; ++i) {
      NodeId v = runnable_[i];
      outbox_off_[v] = sends.size();
      try {
        programs[v]->on_round(contexts_[v], inbox_span(v));
      } catch (...) {
        // First failure stops the shard; the merge below reconstructs the
        // serial engine's behavior from the smallest failing node.
        outbox_len_[v] = sends.size() - outbox_off_[v];
        shard_error[s] = {v, std::current_exception()};
        return;
      }
      outbox_len_[v] = sends.size() - outbox_off_[v];
    }
  });
  parallel_pass_ = false;

  NodeId error_node = kUnreachable;
  std::exception_ptr error;
  for (const auto& [v, e] : shard_error) {
    if (e != nullptr && (error == nullptr || v < error_node)) {
      error_node = v;
      error = e;
    }
  }

  // Canonical-order merge: ascending (sender, send order) is exactly the
  // serial engine's delivery order, so stats, trace, observer stream, and
  // fault-lottery draws come out byte-identical for any thread count. On a
  // failure, nodes before the smallest offender plus the offender's
  // pre-failure sends are merged first — the same partial state the serial
  // engine leaves behind — then the offender's exception propagates (the
  // later shards' buffered sends are dropped, exactly as the serial engine
  // would never have executed those nodes).
  for (std::size_t s = 0; s < shards; ++s) {
    const std::vector<PendingSend>& sends = shard_sends_[s];
    for (std::size_t i = shard_bounds_[s]; i < shard_bounds_[s + 1]; ++i) {
      NodeId v = runnable_[i];
      current_sender_ = v;
      const std::size_t off = outbox_off_[v];
      const std::size_t len = outbox_len_[v];
      for (std::size_t j = off; j < off + len; ++j) {
        const PendingSend& send = sends[j];
        commit(v, send.to, send.word, send.slot, send.edge_words);
      }
      if (error != nullptr && v == error_node) std::rethrow_exception(error);
      if (contexts_[v].keep_alive_) keep_alive_pending_ = true;
    }
  }
}

void Engine::grow_fill() {
  // Amortized growth inside the fill arena: the abandoned old block is
  // reclaimed wholesale at the next scatter's reset, and once the arena has
  // seen its high-water pass the pre-sizing in scatter_inboxes makes this
  // path unreachable.
  const std::size_t cap = std::max<std::size_t>(64, fill_cap_ * 2);
  Message* msgs = fill_arena_.allocate<Message>(cap);
  NodeId* to = fill_arena_.allocate<NodeId>(cap);
  if (fill_count_ > 0) {
    std::memcpy(msgs, fill_msgs_, fill_count_ * sizeof(Message));
    std::memcpy(to, fill_to_, fill_count_ * sizeof(NodeId));
  }
  fill_msgs_ = msgs;
  fill_to_ = to;
  fill_cap_ = cap;
}

void Engine::scatter_inboxes() {
  // Group the fill buffer by receiver with a stable counting scatter —
  // within one receiver, messages keep their canonical (sender, send-order)
  // arrival order, exactly the old per-node push_back order.
  deliver_arena_.reset();
  inbox_msgs_ = deliver_arena_.allocate<Message>(fill_count_);
  // All per-node bookkeeping is scoped to *touched* receivers — last pass's
  // (zeroing stale lengths) and this pass's (counts and offsets) — so a
  // sparse pass costs O(messages), not O(n). Receiver blocks are laid out
  // in first-touch order; each node only ever reads its own span, and
  // within a span the stable scatter keeps the canonical arrival order.
  for (NodeId v : inbox_touched_) inbox_len_[v] = 0;
  inbox_touched_.clear();
  for (std::size_t i = 0; i < fill_count_; ++i) {
    if (inbox_len_[fill_to_[i]]++ == 0) inbox_touched_.push_back(fill_to_[i]);
  }
  std::size_t offset = 0;
  for (NodeId v : inbox_touched_) {
    inbox_offset_[v] = offset;
    scatter_cursor_[v] = offset;
    offset += inbox_len_[v];
  }
  for (std::size_t i = 0; i < fill_count_; ++i) {
    inbox_msgs_[scatter_cursor_[fill_to_[i]]++] = fill_msgs_[i];
  }
  // Recycle the fill arena for the coming pass, pre-sized to the high-water
  // message count so the append path never grows in steady state.
  fill_high_ = std::max(fill_high_, fill_count_);
  fill_arena_.reset();
  fill_cap_ = std::max<std::size_t>(64, fill_high_);
  fill_msgs_ = fill_arena_.allocate<Message>(fill_cap_);
  fill_to_ = fill_arena_.allocate<NodeId>(fill_cap_);
  fill_count_ = 0;
}

void Engine::reset_delivery_buffers() {
  inbox_touched_.clear();
  deliver_arena_.reset();
  inbox_msgs_ = deliver_arena_.allocate<Message>(0);
  fill_arena_.reset();
  fill_cap_ = std::max<std::size_t>(64, fill_high_);
  fill_msgs_ = fill_arena_.allocate<Message>(fill_cap_);
  fill_to_ = fill_arena_.allocate<NodeId>(fill_cap_);
  fill_count_ = 0;
}

}  // namespace qcongest::net
