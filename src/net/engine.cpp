#include "src/net/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/net/trace.hpp"

namespace qcongest::net {

std::size_t Context::num_nodes() const { return engine_->graph().num_nodes(); }

std::size_t Context::bandwidth() const { return engine_->bandwidth(); }

const std::vector<NodeId>& Context::neighbors() const {
  return engine_->graph().neighbors(id_);
}

void Context::send(NodeId to, Word word) { engine_->deliver(id_, to, word); }

Engine::Engine(const Graph& graph, std::size_t bandwidth_words, std::uint64_t seed)
    : graph_(&graph), bandwidth_(bandwidth_words), seed_rng_(seed) {
  if (bandwidth_ == 0) throw std::invalid_argument("Engine: bandwidth 0");
  node_rngs_.reserve(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) node_rngs_.push_back(seed_rng_.fork());

  // Directed-edge slots for bandwidth accounting: node v's i-th neighbor
  // edge occupies slot edge_slot_offset_[v] + i.
  edge_slot_offset_.resize(graph.num_nodes() + 1, 0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    edge_slot_offset_[v + 1] = edge_slot_offset_[v] + graph.degree(v);
  }
}

void Engine::track_cut(std::vector<bool> side) {
  if (!side.empty() && side.size() != graph_->num_nodes()) {
    throw std::invalid_argument("track_cut: one side bit per node required");
  }
  cut_side_ = std::move(side);
}

std::size_t Engine::edge_slot(NodeId from, NodeId to) const {
  const auto& adj = graph_->neighbors(from);
  auto it = std::find(adj.begin(), adj.end(), to);
  if (it == adj.end()) {
    throw std::invalid_argument("Engine: send to non-neighbor");
  }
  return edge_slot_offset_[from] + static_cast<std::size_t>(it - adj.begin());
}

void Engine::deliver(NodeId from, NodeId to, Word word) {
  if (from != current_sender_) {
    throw std::logic_error("Engine: context used outside its node's turn");
  }
  std::size_t slot = edge_slot(from, to);
  if (sent_this_round_[slot] >= bandwidth_) {
    throw std::runtime_error(
        "CONGEST bandwidth exceeded: a node sent more than B words over one "
        "edge in one round");
  }
  ++sent_this_round_[slot];
  stats_.max_edge_words = std::max(stats_.max_edge_words, sent_this_round_[slot]);
  if (!cut_side_.empty() && cut_side_[from] != cut_side_[to]) ++stats_.cut_words;
  if (trace_ != nullptr) {
    trace_->record(TraceEvent{current_pass_, from, to, word.tag, word.quantum});
  }
  next_inbox_[to].push_back(Message{from, word});
  ++stats_.messages;
  if (word.quantum) {
    ++stats_.quantum_words;
  } else {
    ++stats_.classical_words;
  }
}

RunResult Engine::run(std::span<const std::unique_ptr<NodeProgram>> programs,
                      std::size_t max_rounds) {
  const std::size_t n = graph_->num_nodes();
  if (programs.size() != n) {
    throw std::invalid_argument("Engine::run: one program per node required");
  }
  stats_ = RunResult{};
  next_inbox_.assign(n, {});
  sent_this_round_.assign(edge_slot_offset_[n], 0);

  std::vector<Context> contexts(n);
  for (NodeId v = 0; v < n; ++v) {
    contexts[v].engine_ = this;
    contexts[v].id_ = v;
    contexts[v].rng_ = &node_rngs_[v];
  }

  // Pass r delivers the words sent in pass r-1 (synchronous rounds). The
  // protocol's round complexity is the index of the last pass that sent
  // anything: a CONGEST round is a send plus its matching receive.
  //
  // Termination: (a) every node halted with nothing in flight, or (b)
  // quiescence — nothing was delivered this pass after the first, which for
  // event-driven programs (the only kind the protocol library uses) means
  // nothing will ever happen again.
  std::size_t last_send_pass = 0;
  for (std::size_t pass = 1; pass <= max_rounds + 1; ++pass) {
    std::vector<std::vector<Message>> inbox(n);
    inbox.swap(next_inbox_);
    next_inbox_.assign(n, {});
    std::fill(sent_this_round_.begin(), sent_this_round_.end(), 0);

    bool all_halted = true;
    bool any_inbox = false;
    for (NodeId v = 0; v < n; ++v) {
      if (!inbox[v].empty()) any_inbox = true;
      if (!contexts[v].halted_) all_halted = false;
    }
    if ((all_halted || pass > 1) && !any_inbox) {
      stats_.rounds = last_send_pass;
      stats_.completed = true;
      return stats_;
    }

    current_pass_ = pass - 1;
    std::size_t messages_before = stats_.messages;
    for (NodeId v = 0; v < n; ++v) {
      if (contexts[v].halted_) {
        if (!inbox[v].empty()) {
          throw std::logic_error("Engine: message delivered to a halted node");
        }
        continue;
      }
      contexts[v].round_ = pass - 1;
      current_sender_ = v;
      programs[v]->on_round(contexts[v], inbox[v]);
    }
    if (stats_.messages > messages_before) last_send_pass = pass;
  }
  stats_.rounds = last_send_pass;
  stats_.completed = false;
  return stats_;
}

}  // namespace qcongest::net
