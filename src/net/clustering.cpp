#include "src/net/clustering.hpp"

#include <deque>
#include <stdexcept>

#include "src/util/combinatorics.hpp"

namespace qcongest::net {

namespace {

/// Nodes within `radius` hops of `src`.
std::vector<NodeId> ball(const Graph& g, NodeId src, std::size_t radius) {
  std::vector<std::size_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> queue{src};
  dist[src] = 0;
  std::vector<NodeId> members{src};
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    if (dist[v] == radius) continue;
    for (NodeId u : g.neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
        members.push_back(u);
      }
    }
  }
  return members;
}

}  // namespace

Clustering cluster_graph(const Graph& graph, std::size_t d, util::Rng& rng) {
  if (d == 0) throw std::invalid_argument("cluster_graph: d == 0");
  const std::size_t n = graph.num_nodes();
  const std::size_t log_n = util::ceil_log2(n) + 1;
  const std::size_t radius = d * log_n;          // cluster radius R
  const std::size_t separation = 2 * radius + d; // same-color center spacing

  Clustering out;
  out.clusters_of_node.resize(n);
  std::vector<bool> covered(n, false);
  std::size_t color = 0;
  const std::size_t max_colors = 4 * log_n + 8;

  while (true) {
    std::vector<NodeId> uncovered;
    for (NodeId v = 0; v < n; ++v) {
      if (!covered[v]) uncovered.push_back(v);
    }
    if (uncovered.empty()) break;
    if (color >= max_colors) {
      throw std::logic_error("cluster_graph: color budget exceeded");
    }
    rng.shuffle(std::span<NodeId>(uncovered));

    // Greedy centers this color: blocked marks nodes within `separation` of
    // an already-picked center of this color.
    std::vector<bool> blocked(n, false);
    for (NodeId v : uncovered) {
      if (blocked[v]) continue;
      Clustering::Cluster cluster;
      cluster.center = v;
      cluster.color = color;
      cluster.members = ball(graph, v, radius);
      std::size_t cluster_index = out.clusters.size();
      for (NodeId u : cluster.members) {
        covered[u] = true;
        out.clusters_of_node[u].push_back(cluster_index);
      }
      for (NodeId u : ball(graph, v, separation)) blocked[u] = true;
      out.clusters.push_back(std::move(cluster));
    }
    ++color;
  }
  out.num_colors = color;
  // Lemma 24 round cost: O(d log^2 n).
  out.charged_rounds = d * log_n * log_n;
  return out;
}

void validate_clustering(const Graph& graph, const Clustering& clustering,
                         std::size_t d) {
  const std::size_t n = graph.num_nodes();
  const std::size_t log_n = util::ceil_log2(n) + 1;

  for (NodeId v = 0; v < n; ++v) {
    if (clustering.clusters_of_node[v].empty()) {
      throw std::logic_error("clustering: node in no cluster");
    }
  }
  if (clustering.num_colors > 4 * log_n + 8) {
    throw std::logic_error("clustering: too many colors");
  }
  // Cluster (weak) diameter <= 2 R.
  for (const auto& cluster : clustering.clusters) {
    auto dist = graph.bfs_distances(cluster.center);
    for (NodeId u : cluster.members) {
      if (dist[u] > d * log_n) {
        throw std::logic_error("clustering: cluster radius exceeded");
      }
    }
  }
  // Same-color clusters at distance >= d.
  for (std::size_t i = 0; i < clustering.clusters.size(); ++i) {
    auto& a = clustering.clusters[i];
    std::vector<std::size_t> dist_to_a(n, kUnreachable);
    {
      std::deque<NodeId> queue;
      for (NodeId u : a.members) {
        dist_to_a[u] = 0;
        queue.push_back(u);
      }
      while (!queue.empty()) {
        NodeId v = queue.front();
        queue.pop_front();
        for (NodeId u : graph.neighbors(v)) {
          if (dist_to_a[u] == kUnreachable) {
            dist_to_a[u] = dist_to_a[v] + 1;
            queue.push_back(u);
          }
        }
      }
    }
    for (std::size_t j = i + 1; j < clustering.clusters.size(); ++j) {
      auto& b = clustering.clusters[j];
      if (a.color != b.color) continue;
      for (NodeId u : b.members) {
        if (dist_to_a[u] < d) {
          throw std::logic_error("clustering: same-color clusters too close");
        }
      }
    }
  }
}

}  // namespace qcongest::net
