#pragma once

#include <vector>

#include "src/net/graph.hpp"
#include "src/util/rng.hpp"

namespace qcongest::net {

/// A colored cluster cover in the sense of Lemma 24 ([EFFKO21] Thm 17):
/// every node is in at least one cluster, clusters have diameter
/// O(d log n), clusters are colored with O(log n) colors, and same-color
/// clusters are at distance >= d from each other.
struct Clustering {
  struct Cluster {
    NodeId center = 0;
    std::size_t color = 0;
    std::vector<NodeId> members;
  };

  std::vector<Cluster> clusters;
  std::size_t num_colors = 0;
  /// Cluster indices containing each node (>= 1 entry per node).
  std::vector<std::vector<std::size_t>> clusters_of_node;
  /// Rounds charged for the construction per Lemma 24: O(d log^2 n).
  std::size_t charged_rounds = 0;
};

/// Builds the cover. Substitution note (DESIGN.md): [EFFKO21]'s distributed
/// construction is cited machinery; we build the cover centrally (greedy
/// well-separated centers with radius-R balls, R = d ceil(log2 n), iterated
/// over uncovered nodes) and charge its round cost per the lemma. Lemma 25
/// consumes only the structural properties, which `validate_clustering`
/// checks and the tests assert.
Clustering cluster_graph(const Graph& graph, std::size_t d, util::Rng& rng);

/// Verifies all four Lemma 24 properties; throws std::logic_error with a
/// description if one fails.
void validate_clustering(const Graph& graph, const Clustering& clustering,
                         std::size_t d);

}  // namespace qcongest::net
