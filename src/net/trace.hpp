#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/net/graph.hpp"

namespace qcongest::net {

/// One recorded message delivery.
struct TraceEvent {
  std::size_t round = 0;
  NodeId from = 0;
  NodeId to = 0;
  std::int32_t tag = 0;
  bool quantum = false;
};

/// Message-level execution trace for observability and debugging. Attach to
/// an Engine with Engine::set_trace; every send is recorded with its round.
class Trace {
 public:
  void clear() { events_.clear(); }
  void record(const TraceEvent& event) { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Messages sent per round (index = round; may have trailing zeros
  /// trimmed).
  std::vector<std::size_t> per_round_counts() const;

  /// The `top` most-used directed edges as ((from, to), count), busiest
  /// first.
  std::vector<std::pair<std::pair<NodeId, NodeId>, std::size_t>> busiest_edges(
      std::size_t top) const;

  /// Message counts per protocol tag.
  std::map<std::int32_t, std::size_t> per_tag_counts() const;

  /// ASCII activity timeline: one line per round, a bar of '#' scaled to
  /// `width` columns, annotated with the message count. Handy in examples
  /// and failure logs.
  std::string render_timeline(std::size_t width = 50) const;

  /// Undirected per-edge message totals keyed by (min, max) endpoints —
  /// directly consumable by Graph::to_dot as edge labels.
  std::map<std::pair<NodeId, NodeId>, std::size_t> edge_totals() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace qcongest::net
