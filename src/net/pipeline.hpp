#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/net/bfs.hpp"
#include "src/net/engine.hpp"

namespace qcongest::net {

/// Result of a pipelined downcast: every node holds a copy of the root's
/// word sequence.
struct DowncastResult {
  std::vector<std::vector<std::int64_t>> received;  // [node][word index]
  RunResult cost;
};

/// Reusable scratch for repeated pipeline runs over one engine/tree pair
/// (the Theorem 8 oracle runs four per charged batch). Pools the per-node
/// program objects and payload matrices so steady-state batches allocate
/// nothing: programs are reinitialized in place before each run instead of
/// reconstructed. The workspace binds to the first tree it is used with and
/// discards its pools if the tree (or node count) changes. Not thread-safe;
/// one workspace per caller. Treat the members as opaque — they are managed
/// by the pipeline functions.
struct PipelineWorkspace {
  std::vector<std::unique_ptr<NodeProgram>> downcast_programs;
  std::vector<std::unique_ptr<NodeProgram>> convergecast_programs;
  std::vector<std::vector<std::int64_t>> value_scratch;
  const BfsTree* bound_tree = nullptr;
};

/// Lemma 7's communication pattern: the root streams `payload` down the BFS
/// tree, one word per edge per round, fully pipelined — a node forwards word
/// i the round after receiving it, while word i+1 is still in flight.
/// Rounds: height + |payload| - 1 (vs height * |payload| unpipelined).
/// `quantum` marks the words as qubit-words (Quantum CONGEST accounting).
DowncastResult pipelined_downcast(Engine& engine, const BfsTree& tree,
                                  const std::vector<std::int64_t>& payload,
                                  bool quantum);

/// Pooled variant for hot loops: programs come from `ws` (reinitialized in
/// place, zero steady-state allocation). The per-node received copies are
/// only collected into the result when `collect_received` is set — cost-only
/// callers skip n payload copies per run.
DowncastResult pipelined_downcast(Engine& engine, const BfsTree& tree,
                                  const std::vector<std::int64_t>& payload,
                                  bool quantum, PipelineWorkspace& ws,
                                  bool collect_received = false);

/// Ablation baseline: the naive unpipelined downcast, where a node only
/// starts forwarding after receiving the *entire* payload. Rounds:
/// height * |payload|. Used by the Lemma 7 bench to show the gap.
DowncastResult unpipelined_downcast(Engine& engine, const BfsTree& tree,
                                    const std::vector<std::int64_t>& payload,
                                    bool quantum);

/// Commutative-semigroup combine operation (Theorem 8's oplus).
using CombineOp = std::function<std::int64_t(std::int64_t, std::int64_t)>;

/// Result of a pipelined aggregating convergecast.
struct ConvergecastResult {
  std::vector<std::int64_t> totals;  // [item] — oplus over all nodes, at root
  RunResult cost;
};

/// Theorem 8's aggregation phase: every node holds `items` values (one per
/// parallel query); the tree computes the element-wise oplus of all nodes'
/// vectors at the root. Each value is `value_words` words wide and a node
/// must receive a child's *full* value before combining (no intra-value
/// streaming — the paper's "(D + p) * ceil(q / log n)" term), but distinct
/// items are pipelined. `quantum` marks the words as qubit-words.
ConvergecastResult pipelined_convergecast(Engine& engine, const BfsTree& tree,
                                          const std::vector<std::vector<std::int64_t>>& values,
                                          std::size_t value_words, const CombineOp& op,
                                          bool quantum);

/// Pooled variant for hot loops: programs come from `ws`, reinitialized in
/// place (zero steady-state allocation per run).
ConvergecastResult pipelined_convergecast(Engine& engine, const BfsTree& tree,
                                          const std::vector<std::vector<std::int64_t>>& values,
                                          std::size_t value_words, const CombineOp& op,
                                          bool quantum, PipelineWorkspace& ws);

}  // namespace qcongest::net
