#pragma once

#include <functional>
#include <vector>

#include "src/net/bfs.hpp"
#include "src/net/engine.hpp"

namespace qcongest::net {

/// Result of a pipelined downcast: every node holds a copy of the root's
/// word sequence.
struct DowncastResult {
  std::vector<std::vector<std::int64_t>> received;  // [node][word index]
  RunResult cost;
};

/// Lemma 7's communication pattern: the root streams `payload` down the BFS
/// tree, one word per edge per round, fully pipelined — a node forwards word
/// i the round after receiving it, while word i+1 is still in flight.
/// Rounds: height + |payload| - 1 (vs height * |payload| unpipelined).
/// `quantum` marks the words as qubit-words (Quantum CONGEST accounting).
DowncastResult pipelined_downcast(Engine& engine, const BfsTree& tree,
                                  const std::vector<std::int64_t>& payload,
                                  bool quantum);

/// Ablation baseline: the naive unpipelined downcast, where a node only
/// starts forwarding after receiving the *entire* payload. Rounds:
/// height * |payload|. Used by the Lemma 7 bench to show the gap.
DowncastResult unpipelined_downcast(Engine& engine, const BfsTree& tree,
                                    const std::vector<std::int64_t>& payload,
                                    bool quantum);

/// Commutative-semigroup combine operation (Theorem 8's oplus).
using CombineOp = std::function<std::int64_t(std::int64_t, std::int64_t)>;

/// Result of a pipelined aggregating convergecast.
struct ConvergecastResult {
  std::vector<std::int64_t> totals;  // [item] — oplus over all nodes, at root
  RunResult cost;
};

/// Theorem 8's aggregation phase: every node holds `items` values (one per
/// parallel query); the tree computes the element-wise oplus of all nodes'
/// vectors at the root. Each value is `value_words` words wide and a node
/// must receive a child's *full* value before combining (no intra-value
/// streaming — the paper's "(D + p) * ceil(q / log n)" term), but distinct
/// items are pipelined. `quantum` marks the words as qubit-words.
ConvergecastResult pipelined_convergecast(Engine& engine, const BfsTree& tree,
                                          const std::vector<std::vector<std::int64_t>>& values,
                                          std::size_t value_words, const CombineOp& op,
                                          bool quantum);

}  // namespace qcongest::net
