#pragma once

#include <cstdint>
#include <vector>

namespace qcongest::util {

/// ceil(a / b) for positive integers. Requires b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// ceil(log2(n)) for n >= 1; returns 0 for n == 1.
constexpr unsigned ceil_log2(std::uint64_t n) {
  unsigned bits = 0;
  std::uint64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

/// floor(log2(n)) for n >= 1.
constexpr unsigned floor_log2(std::uint64_t n) {
  unsigned bits = 0;
  while (n > 1) {
    n >>= 1;
    ++bits;
  }
  return bits;
}

/// Integer power, overflow-unchecked (callers keep arguments small).
constexpr std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  std::uint64_t r = 1;
  while (exp-- > 0) r *= base;
  return r;
}

/// Exact binomial coefficient C(n, k) as a double (handles large n without
/// overflow; exact for values representable in 53 bits).
double binomial(std::uint64_t n, std::uint64_t k);

/// log(C(n, k)) via lgamma; stable for very large n, k.
double log_binomial(std::uint64_t n, std::uint64_t k);

/// Exact binomial for small arguments where the result fits in uint64_t.
/// Throws std::overflow_error otherwise.
std::uint64_t binomial_exact(std::uint64_t n, std::uint64_t k);

/// All z-element subsets of [0, n), in lexicographic order. Intended for
/// toy-scale exhaustive checks (e.g. validating the Johnson-graph walk).
std::vector<std::vector<std::size_t>> all_subsets(std::size_t n, std::size_t z);

}  // namespace qcongest::util
