#pragma once

#include <cstddef>
#include <string>

namespace qcongest::util {

/// Strict parse of a worker/thread-count environment value. Accepts an
/// optionally whitespace-wrapped base-10 integer >= 1; everything else —
/// null, empty, trailing garbage ("4x"), zero, negatives, overflow — is
/// rejected: the function returns `fallback` and, when `warning` is
/// non-null and the value was present but invalid, stores a human-readable
/// reason (empty string means the value was accepted or simply unset).
///
/// The previous ad-hoc strtol call silently mapped garbage and negative
/// values to "serial", which hid typos like QCONGEST_BENCH_THREADS=8x
/// behind an unexplained 8x slowdown.
std::size_t env_thread_count(const char* text, std::size_t fallback,
                             std::string* warning = nullptr);

/// Normalize a directory value from the environment: null or empty -> ""
/// (meaning "current directory"), otherwise trailing '/' characters are
/// stripped — except a lone "/" which stays the filesystem root — so
/// callers can unconditionally append "/file" without doubling separators.
std::string env_directory(const char* text);

/// Strict parse of a cache-directory environment value (QCONGEST_CACHE_DIR
/// and friends), matching the QCONGEST_BENCH_* strictness: null or unset ->
/// "" with no warning (caching simply off); present but unusable -> ""
/// plus a human-readable reason in *warning. Rejected: empty or
/// whitespace-only values, and relative paths containing a ".." component
/// (a relative climb silently escapes the working tree — an absolute path
/// says where the cache lives, a relative "../x" says "somewhere above
/// wherever you happen to run"). Accepted values are normalized like
/// env_directory: trailing '/' stripped (a lone "/" stays the root).
std::string env_cache_dir(const char* text, std::string* warning = nullptr);

}  // namespace qcongest::util
