#include "src/util/arena.hpp"

#include <algorithm>

namespace qcongest::util {

namespace {

std::size_t align_up(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t initial_bytes) {
  std::size_t size = std::max<std::size_t>(initial_bytes, 64);
  Block block{std::make_unique<std::byte[]>(size), size};
  cursor_ = block.storage.get();
  end_ = cursor_ + size;
  capacity_ = size;
  blocks_.push_back(std::move(block));
}

void* Arena::allocate_bytes(std::size_t bytes, std::size_t align) {
  auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
  std::size_t padding = align_up(addr, align) - addr;
  if (padding + bytes > static_cast<std::size_t>(end_ - cursor_)) {
    return overflow(bytes, align);
  }
  std::byte* out = cursor_ + padding;
  cursor_ = out + bytes;
  bytes_used_ += bytes;
  return out;
}

void* Arena::overflow(std::size_t bytes, std::size_t align) {
  // Out-of-arena fallback: a dedicated spill block sized to at least the
  // request and at least double the current capacity (geometric growth keeps
  // the number of spills per cycle logarithmic). reset() coalesces.
  std::size_t size = std::max(bytes + align, capacity_ * 2);
  Block block{std::make_unique<std::byte[]>(size), size};
  cursor_ = block.storage.get();
  end_ = cursor_ + size;
  capacity_ += size;
  blocks_.push_back(std::move(block));

  auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
  std::byte* out = cursor_ + (align_up(addr, align) - addr);
  cursor_ = out + bytes;
  bytes_used_ += bytes;
  return out;
}

void Arena::reset() {
  high_water_ = std::max(high_water_, bytes_used_);
  if (blocks_.size() > 1) {
    // The cycle spilled: coalesce into one block covering the high-water
    // mark (with slack for alignment padding) so later cycles stay on the
    // single-block bump path.
    std::size_t size = std::max(high_water_ + high_water_ / 2 + 64, capacity_);
    blocks_.clear();
    Block block{std::make_unique<std::byte[]>(size), size};
    capacity_ = size;
    blocks_.push_back(std::move(block));
  }
  cursor_ = blocks_.front().storage.get();
  end_ = cursor_ + blocks_.front().size;
  bytes_used_ = 0;
}

}  // namespace qcongest::util
