#include "src/util/env.hpp"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <string_view>

namespace qcongest::util {

std::size_t env_thread_count(const char* text, std::size_t fallback,
                             std::string* warning) {
  if (warning != nullptr) warning->clear();
  if (text == nullptr) return fallback;

  const char* p = text;
  while (std::isspace(static_cast<unsigned char>(*p))) ++p;
  if (*p == '\0') {
    if (warning != nullptr) *warning = "is empty; using default";
    return fallback;
  }

  errno = 0;
  char* end = nullptr;
  long value = std::strtol(p, &end, 10);
  bool overflowed = errno == ERANGE;
  while (end != nullptr && std::isspace(static_cast<unsigned char>(*end))) ++end;

  if (end == p || end == nullptr || *end != '\0') {
    if (warning != nullptr) {
      *warning = "is not a number ('" + std::string(text) + "'); using default";
    }
    return fallback;
  }
  if (overflowed || value > static_cast<long>(INT_MAX)) {
    if (warning != nullptr) {
      *warning = "is out of range ('" + std::string(text) + "'); using default";
    }
    return fallback;
  }
  if (value < 1) {
    if (warning != nullptr) {
      *warning = "must be >= 1 (got '" + std::string(text) + "'); using default";
    }
    return fallback;
  }
  return static_cast<std::size_t>(value);
}

std::string env_directory(const char* text) {
  if (text == nullptr) return "";
  std::string dir = text;
  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  return dir;
}

std::string env_cache_dir(const char* text, std::string* warning) {
  if (warning != nullptr) warning->clear();
  if (text == nullptr) return "";

  std::string dir = text;
  bool blank = true;
  for (char c : dir) {
    if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
  }
  if (blank) {
    if (warning != nullptr) *warning = "is empty; caching disabled";
    return "";
  }

  // Split on '/' and reject any ".." component of a relative path. The
  // check is on components, not substrings: "..cache" and "a..b" are fine.
  if (dir.front() != '/') {
    std::size_t start = 0;
    while (start <= dir.size()) {
      std::size_t slash = dir.find('/', start);
      std::string_view part =
          slash == std::string::npos
              ? std::string_view(dir).substr(start)
              : std::string_view(dir).substr(start, slash - start);
      if (part == "..") {
        if (warning != nullptr) {
          *warning = "is a relative path with '..' ('" + dir +
                     "'); caching disabled";
        }
        return "";
      }
      if (slash == std::string::npos) break;
      start = slash + 1;
    }
  }

  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  return dir;
}

}  // namespace qcongest::util
