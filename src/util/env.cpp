#include "src/util/env.hpp"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>

namespace qcongest::util {

std::size_t env_thread_count(const char* text, std::size_t fallback,
                             std::string* warning) {
  if (warning != nullptr) warning->clear();
  if (text == nullptr) return fallback;

  const char* p = text;
  while (std::isspace(static_cast<unsigned char>(*p))) ++p;
  if (*p == '\0') {
    if (warning != nullptr) *warning = "is empty; using default";
    return fallback;
  }

  errno = 0;
  char* end = nullptr;
  long value = std::strtol(p, &end, 10);
  bool overflowed = errno == ERANGE;
  while (end != nullptr && std::isspace(static_cast<unsigned char>(*end))) ++end;

  if (end == p || end == nullptr || *end != '\0') {
    if (warning != nullptr) {
      *warning = "is not a number ('" + std::string(text) + "'); using default";
    }
    return fallback;
  }
  if (overflowed || value > static_cast<long>(INT_MAX)) {
    if (warning != nullptr) {
      *warning = "is out of range ('" + std::string(text) + "'); using default";
    }
    return fallback;
  }
  if (value < 1) {
    if (warning != nullptr) {
      *warning = "must be >= 1 (got '" + std::string(text) + "'); using default";
    }
    return fallback;
  }
  return static_cast<std::size_t>(value);
}

std::string env_directory(const char* text) {
  if (text == nullptr) return "";
  std::string dir = text;
  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  return dir;
}

}  // namespace qcongest::util
