#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace qcongest::util {

double RunningStats::stddev() const { return std::sqrt(variance()); }

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  double lo = *std::max_element(values.begin(),
                                values.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace qcongest::util
