#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>  // qlint-allow(raw-thread): the pool is the one blessed home for std::thread
#include <vector>

namespace qcongest::util {

/// The repo's one and only thread-spawning utility. Everything parallel —
/// the engine's sharded rounds, trial fan-out in benches and tools — goes
/// through a ThreadPool; raw std::thread / std::async elsewhere is banned
/// by qlint's `raw-thread` rule, because ad-hoc threads are where
/// nondeterminism and leaked joins come from.
///
/// The pool is deliberately minimal: a fixed set of workers and one
/// blocking primitive, parallel_for. Determinism is the caller's job — the
/// pool guarantees only that every index runs exactly once and that
/// parallel_for does not return before all of them finished; callers that
/// need a deterministic result must make each index's work independent and
/// merge results in index order afterwards (see net::Engine's sharded
/// round merge for the canonical pattern).
class ThreadPool {
 public:
  /// A pool that runs `threads` tasks concurrently. The calling thread of
  /// parallel_for participates as one of them, so `threads == 1` (or 0)
  /// spawns no workers at all and parallel_for degrades to a plain loop.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (spawned workers + the calling thread).
  std::size_t threads() const { return workers_.size() + 1; }

  /// Run fn(0) ... fn(count - 1), each exactly once, across the pool; the
  /// calling thread works too. Blocks until every index completed. If one
  /// or more calls throw, the exception of the smallest index is rethrown
  /// (deterministic regardless of scheduling); the remaining indices still
  /// run to completion first.
  ///
  /// Not reentrant: fn must not call parallel_for on the same pool.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::size_t next = 0;       // next unclaimed index
    std::size_t unfinished = 0; // indices claimed-or-unclaimed but not done
    std::exception_ptr error;
    std::size_t error_index = 0;
  };

  void worker_loop();
  /// Claim and run indices of the current job until none remain. Returns
  /// with the pool mutex held by `lock`.
  void drain_job(std::unique_lock<std::mutex>& lock);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  std::vector<std::thread> workers_;  // qlint-allow(raw-thread): pool internals
  Job job_;
  std::uint64_t generation_ = 0;  // bumped per job so sleeping workers wake once
  bool stopping_ = false;
};

}  // namespace qcongest::util
