#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>  // qlint-allow(raw-thread): the pool is the one blessed home for std::thread
#include <vector>

namespace qcongest::util {

/// The repo's one and only thread-spawning utility. Everything parallel —
/// the engine's sharded rounds, trial fan-out in benches and tools — goes
/// through a ThreadPool; raw std::thread / std::async elsewhere is banned
/// by qlint's `raw-thread` rule, because ad-hoc threads are where
/// nondeterminism and leaked joins come from.
///
/// The pool is deliberately minimal: a fixed set of workers and two
/// primitives — the blocking parallel_for and the fire-and-forget submit
/// queue the qcongestd service fans jobs out on. Determinism is the
/// caller's job — the pool guarantees only that every index/task runs
/// exactly once and that parallel_for does not return before all of its
/// indices finished; callers that need a deterministic result must make
/// each unit of work independent and merge results in a content-derived
/// order afterwards (see net::Engine's sharded round merge for the
/// canonical pattern).
class ThreadPool {
 public:
  /// A pool that runs `threads` tasks concurrently. The calling thread of
  /// parallel_for participates as one of them, so `threads == 1` (or 0)
  /// spawns no workers at all and parallel_for degrades to a plain loop.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (spawned workers + the calling thread).
  std::size_t threads() const { return workers_.size() + 1; }

  /// Run fn(0) ... fn(count - 1), each exactly once, across the pool; the
  /// calling thread works too. Blocks until every index completed. If one
  /// or more calls throw, the exception of the smallest index is rethrown
  /// (deterministic regardless of scheduling); the remaining indices still
  /// run to completion first.
  ///
  /// Not reentrant: fn must not call parallel_for on the same pool.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Enqueue a fire-and-forget task. Tasks run on the workers in FIFO
  /// submission order (concurrently across workers); on a pool with no
  /// workers (threads <= 1) the task runs synchronously in submit itself,
  /// so submit always degrades to a plain call rather than deadlocking.
  ///
  /// A throwing task never takes the process down: the exception is caught
  /// and tallied in task_errors() — a fire-and-forget task has no caller
  /// stack to rethrow into, so callers that care about failures must catch
  /// inside the task (the qcongestd service does, converting every job
  /// exception into a structured error report).
  ///
  /// Shutdown policy (deterministic by design, exercised under TSan by
  /// tests/thread_pool_shutdown_test.cpp): the destructor DRAINS — every
  /// task submitted before destruction runs to completion, then the workers
  /// join. Abandoning queued tasks would make "was my job dropped?"
  /// scheduling-dependent; draining makes destruction a barrier. Tasks must
  /// therefore never block on work of the same pool, and must not call
  /// submit during destruction (enqueue-after-stop throws).
  void submit(std::function<void()> task);

  /// Tasks whose exception the pool swallowed (see submit).
  std::size_t task_errors() const;

  /// Tasks submitted but not yet finished (queued + running).
  std::size_t tasks_pending() const;

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::size_t next = 0;       // next unclaimed index
    std::size_t unfinished = 0; // indices claimed-or-unclaimed but not done
    std::exception_ptr error;
    std::size_t error_index = 0;
  };

  void worker_loop();
  /// Claim and run indices of the current job until none remain. Returns
  /// with the pool mutex held by `lock`.
  void drain_job(std::unique_lock<std::mutex>& lock);
  /// Pop and run one queued task. Returns with the pool mutex held.
  void run_one_task(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  std::condition_variable tasks_done_;
  std::vector<std::thread> workers_;  // qlint-allow(raw-thread): pool internals
  Job job_;
  std::deque<std::function<void()>> tasks_;  // FIFO submit queue
  std::size_t tasks_running_ = 0;
  std::size_t task_errors_ = 0;
  std::uint64_t generation_ = 0;  // bumped per job so sleeping workers wake once
  bool stopping_ = false;
};

}  // namespace qcongest::util
