#include "src/util/combinatorics.hpp"

#include <cmath>
#include <stdexcept>

namespace qcongest::util {

double binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0.0;
  return std::exp(log_binomial(n, k));
}

double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

std::uint64_t binomial_exact(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    std::uint64_t factor = n - k + i;
    // result * factor / i is exact at every step; check for overflow first.
    if (result > UINT64_MAX / factor) {
      throw std::overflow_error("binomial_exact: result does not fit in 64 bits");
    }
    result = result * factor / i;
  }
  return result;
}

std::vector<std::vector<std::size_t>> all_subsets(std::size_t n, std::size_t z) {
  std::vector<std::vector<std::size_t>> out;
  if (z > n) return out;
  std::vector<std::size_t> cur(z);
  for (std::size_t i = 0; i < z; ++i) cur[i] = i;
  while (true) {
    out.push_back(cur);
    // Advance to the next subset in lexicographic order.
    std::size_t i = z;
    while (i > 0 && cur[i - 1] == n - z + i - 1) --i;
    if (i == 0) break;
    ++cur[i - 1];
    for (std::size_t j = i; j < z; ++j) cur[j] = cur[j - 1] + 1;
  }
  return out;
}

}  // namespace qcongest::util
