#pragma once

#include <cstddef>
#include <vector>

namespace qcongest::util {

/// Online mean/variance accumulator (Welford). Used by benches to aggregate
/// measured round counts across trials.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median of a copy of the data (empty input -> 0).
double median(std::vector<double> values);

}  // namespace qcongest::util
