#include "src/util/rng.hpp"

#include <numeric>
#include <unordered_set>

namespace qcongest::util {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t z) {
  if (z > n) throw std::invalid_argument("Rng::sample_without_replacement: z > n");
  // For dense samples a partial Fisher-Yates is cheaper; for sparse samples
  // Floyd's algorithm avoids materializing [0, n).
  if (z * 2 >= n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    for (std::size_t i = 0; i < z; ++i) {
      std::swap(all[i], all[i + index(n - i)]);
    }
    all.resize(z);
    return all;
  }
  std::unordered_set<std::size_t> chosen;
  std::vector<std::size_t> result;
  result.reserve(z);
  for (std::size_t j = n - z; j < n; ++j) {
    std::size_t t = index(j + 1);
    if (chosen.contains(t)) t = j;
    chosen.insert(t);
    result.push_back(t);
  }
  return result;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  shuffle(std::span<std::size_t>(p));
  return p;
}

}  // namespace qcongest::util
