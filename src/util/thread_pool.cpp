#include "src/util/thread_pool.hpp"

#include <stdexcept>

namespace qcongest::util {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  while (true) {
    work_ready_.wait(lock, [&] {
      return stopping_ || !tasks_.empty() ||
             (job_.fn != nullptr && generation_ != seen);
    });
    // parallel_for jobs first (a caller is blocked on them), then the
    // fire-and-forget queue. A stopping pool still drains the queue — the
    // destructor's contract is that every submitted task runs.
    if (job_.fn != nullptr && generation_ != seen) {
      seen = generation_;
      drain_job(lock);
      continue;
    }
    if (!tasks_.empty()) {
      run_one_task(lock);
      continue;
    }
    if (stopping_) return;
  }
}

void ThreadPool::run_one_task(std::unique_lock<std::mutex>& lock) {
  std::function<void()> task = std::move(tasks_.front());
  tasks_.pop_front();
  ++tasks_running_;
  lock.unlock();
  bool threw = false;
  try {
    task();
  } catch (...) {  // qlint-allow(catch-all-swallow): designed isolation boundary — fire-and-forget task, no caller stack to rethrow into; the failure is tallied in task_errors() below
    threw = true;
  }
  lock.lock();
  if (threw) ++task_errors_;
  if (--tasks_running_ == 0 && tasks_.empty()) tasks_done_.notify_all();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // No concurrency available: run synchronously, same error policy.
    bool threw = false;
    try {
      task();
    } catch (...) {  // qlint-allow(catch-all-swallow): designed isolation boundary — same error policy as the worker path, tallied in task_errors() below
      threw = true;
    }
    if (threw) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++task_errors_;
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit: pool is shutting down");
    }
    tasks_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

std::size_t ThreadPool::task_errors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return task_errors_;
}

std::size_t ThreadPool::tasks_pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size() + tasks_running_;
}

void ThreadPool::drain_job(std::unique_lock<std::mutex>& lock) {
  while (job_.fn != nullptr && job_.next < job_.count) {
    std::size_t index = job_.next++;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*job_.fn)(index);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && (!job_.error || index < job_.error_index)) {
      job_.error = error;
      job_.error_index = index;
    }
    if (--job_.unfinished == 0) job_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // No concurrency available (or needed): plain loop, same error rule.
    std::exception_ptr error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  job_.fn = &fn;
  job_.count = count;
  job_.next = 0;
  job_.unfinished = count;
  job_.error = nullptr;
  job_.error_index = 0;
  ++generation_;
  work_ready_.notify_all();

  drain_job(lock);  // the calling thread participates
  job_done_.wait(lock, [&] { return job_.unfinished == 0; });
  job_.fn = nullptr;
  std::exception_ptr error = job_.error;
  job_.error = nullptr;
  if (error) std::rethrow_exception(error);
}

}  // namespace qcongest::util
