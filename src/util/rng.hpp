#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace qcongest::util {

/// Deterministic, seedable random number generator used throughout the
/// library. Every randomized algorithm takes an `Rng&` so that experiments
/// are reproducible bit-for-bit from a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_));
  }

  /// Uniform real in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Standard normal sample.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Geometric sample: number of failures before first success, success
  /// probability p in (0, 1].
  std::uint64_t geometric(double p) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) throw std::invalid_argument("Rng::geometric: p <= 0");
    return std::geometric_distribution<std::uint64_t>(p)(engine_);
  }

  /// Exponential sample with rate lambda > 0.
  double exponential(double lambda) {
    return std::exponential_distribution<double>(lambda)(engine_);
  }

  /// Uniformly random subset of size z from [0, n). Requires z <= n.
  /// Returned indices are unsorted. Uses Floyd's algorithm, O(z) expected.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t z);

  /// Random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Fisher-Yates shuffle of a span in place.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Pick one element of a non-empty span uniformly.
  template <typename T>
  const T& choice(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::choice: empty span");
    return items[index(items.size())];
  }

  std::mt19937_64& engine() { return engine_; }

  /// Derive an independent child generator (e.g. one per network node).
  Rng fork() { return Rng(engine_()); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qcongest::util
