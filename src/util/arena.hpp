#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace qcongest::util {

/// Bump allocator for per-round scratch storage — the allocation-discipline
/// backbone of the engine's message delivery hot path.
///
/// Allocation is a pointer bump inside the current block; reset() reclaims
/// every allocation at once without returning memory to the system, so a
/// steady-state producer (one reset per engine pass) allocates from the OS
/// only while it is still discovering its high-water mark. When a reset
/// finds that the arena overflowed into spill blocks, the blocks are
/// coalesced into one block sized to the high-water mark, restoring the
/// single-block fast path for every later cycle.
///
/// Requests larger than the current block grow the arena (out-of-arena
/// fallback: a dedicated spill block sized to the request), never fail.
/// Memory is raw and unconstructed: allocate<T> requires trivially
/// copyable, trivially destructible T — the arena never runs constructors
/// or destructors.
///
/// Not thread-safe; each arena belongs to one owner (the engine thread).
class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 1 << 12;  // 4 KiB

  explicit Arena(std::size_t initial_bytes = kDefaultBlockBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// `count` default-initialized-free slots of T, aligned to alignof(T).
  /// count == 0 returns a non-null, unusable pointer (like std::vector::data
  /// on an empty vector, callers may form zero-length spans from it).
  template <typename T>
  T* allocate(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena never runs constructors or destructors");
    return static_cast<T*>(allocate_bytes(count * sizeof(T), alignof(T)));
  }

  /// Raw aligned storage. `align` must be a power of two.
  void* allocate_bytes(std::size_t bytes, std::size_t align);

  /// Reclaim every allocation. Capacity is retained; if the cycle spilled
  /// past the first block, all blocks are coalesced into one block sized to
  /// the high-water mark so the next cycle bumps inside a single block.
  void reset();

  /// Bytes handed out since the last reset (excluding alignment padding).
  std::size_t bytes_used() const { return bytes_used_; }
  /// Largest bytes_used() over any cycle so far.
  std::size_t high_water() const { return high_water_; }
  /// Total bytes owned (all blocks).
  std::size_t capacity() const { return capacity_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> storage;
    std::size_t size = 0;
  };

  /// Slow path: open a new block big enough for the request.
  void* overflow(std::size_t bytes, std::size_t align);

  std::vector<Block> blocks_;
  std::byte* cursor_ = nullptr;  // next free byte of the current block
  std::byte* end_ = nullptr;     // one past the current block
  std::size_t bytes_used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace qcongest::util
