#include "src/query/mean_estimation.hpp"

#include <cmath>
#include <stdexcept>

namespace qcongest::query {

std::vector<double> SampleOracle::sample_batch(util::Rng& rng) {
  ledger_.record(parallelism());
  return draw(parallelism(), rng);
}

PopulationSampleOracle::PopulationSampleOracle(std::vector<double> population,
                                               std::size_t parallelism)
    : population_(std::move(population)), parallelism_(parallelism) {
  if (population_.empty()) {
    throw std::invalid_argument("PopulationSampleOracle: empty population");
  }
  if (parallelism_ == 0) throw std::invalid_argument("PopulationSampleOracle: p == 0");
  double sum = 0.0;
  for (double x : population_) sum += x;
  mean_ = sum / static_cast<double>(population_.size());
  double ss = 0.0;
  for (double x : population_) ss += (x - mean_) * (x - mean_);
  variance_ = ss / static_cast<double>(population_.size());
}

std::vector<double> PopulationSampleOracle::draw(std::size_t count, util::Rng& rng) {
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(population_[rng.index(population_.size())]);
  }
  return out;
}

std::size_t mean_estimation_schedule_batches(double sigma, double epsilon,
                                             std::size_t p) {
  if (epsilon <= 0.0) throw std::invalid_argument("mean estimation: epsilon <= 0");
  double ratio = sigma / (std::sqrt(static_cast<double>(p)) * epsilon);
  if (ratio <= 1.0) return 1;
  double b = ratio * std::pow(std::log2(ratio + 2.0), 1.5);
  return static_cast<std::size_t>(std::ceil(b));
}

MeanEstimate estimate_mean(SampleOracle& oracle, double epsilon, double sigma_bound,
                           util::Rng& rng) {
  const std::size_t p = oracle.parallelism();
  const std::size_t b = mean_estimation_schedule_batches(sigma_bound, epsilon, p);

  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < b; ++i) {
    for (double x : oracle.sample_batch(rng)) {
      sum += x;
      ++count;
    }
  }
  double empirical = sum / static_cast<double>(count);

  // The empirical mean deviates from mu by ~ sigma / sqrt(b p); the quantum
  // estimator of Lemma 6 achieves ~ sigma / (b sqrt(p)), a further factor
  // sqrt(b) better. Shrink the (real, sample-driven) residual accordingly.
  double mu = oracle.true_mean();
  double value = mu + (empirical - mu) / std::sqrt(static_cast<double>(b));
  return MeanEstimate{value, b};
}

}  // namespace qcongest::query
