#pragma once

#include <optional>

#include "src/query/element_distinctness.hpp"
#include "src/query/oracle.hpp"
#include "src/query/parallel_grover.hpp"
#include "src/query/parallel_minfind.hpp"
#include "src/util/rng.hpp"

namespace qcongest::query {

/// Success-probability boosting (the paper's "Notation and conventions"
/// remark: a central leader combines O(log(1/delta)) independent runs to
/// push the 2/3 guarantee to 1 - delta, costing one extra log factor).
/// All combination steps stay protocol-legal: candidates from different
/// runs are compared through charged verification batches, never through
/// uncharged peeks.

/// Number of independent 2/3-success runs needed for failure <= delta.
std::size_t boost_repetitions(double delta);

/// Lemma 2 find-one boosted to success >= 1 - delta (one-sided: repeats
/// until a verified hit or the repetition budget is exhausted).
std::optional<std::size_t> grover_find_one_boosted(BatchOracle& oracle,
                                                   const MarkPredicate& pred,
                                                   double delta, util::Rng& rng);

/// Lemma 3 minimum finding boosted to success >= 1 - delta: the candidates
/// of all runs are re-queried in one final charged batch and the smallest
/// wins. `maximum` flips the comparison.
std::size_t minfind_boosted(BatchOracle& oracle, double delta, util::Rng& rng,
                            bool maximum = false);

/// Lemma 5 element distinctness boosted to success >= 1 - delta (one-sided:
/// a returned pair is always a genuine collision).
std::optional<CollisionPair> element_distinctness_boosted(BatchOracle& oracle,
                                                          double delta,
                                                          util::Rng& rng);

}  // namespace qcongest::query
