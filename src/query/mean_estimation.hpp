#pragma once

#include <vector>

#include "src/query/ledger.hpp"
#include "src/util/rng.hpp"

namespace qcongest::query {

/// Oracle for Lemma 6: each charged batch is one use of U_X^{\otimes p},
/// producing p independent samples of the random variable X. The distributed
/// implementation (framework) turns a batch into real network traffic.
class SampleOracle {
 public:
  virtual ~SampleOracle() = default;

  /// p — samples per charged batch.
  virtual std::size_t parallelism() const = 0;

  /// One charged batch of p samples.
  std::vector<double> sample_batch(util::Rng& rng);

  /// Simulator access to the true moments (used to model the estimator's
  /// outcome; never charged).
  virtual double true_mean() const = 0;
  virtual double true_variance() const = 0;

  const QueryLedger& ledger() const { return ledger_; }
  void reset_ledger() { ledger_.reset(); }

 protected:
  virtual std::vector<double> draw(std::size_t count, util::Rng& rng) = 0;

 private:
  QueryLedger ledger_;
};

/// SampleOracle over a fixed finite population (uniform index draw); used by
/// tests and by the average-eccentricity application.
class PopulationSampleOracle final : public SampleOracle {
 public:
  PopulationSampleOracle(std::vector<double> population, std::size_t parallelism);

  std::size_t parallelism() const override { return parallelism_; }
  double true_mean() const override { return mean_; }
  double true_variance() const override { return variance_; }

 protected:
  std::vector<double> draw(std::size_t count, util::Rng& rng) override;

 private:
  std::vector<double> population_;
  std::size_t parallelism_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

struct MeanEstimate {
  double value = 0.0;
  std::size_t batches = 0;  // b charged to the oracle by this call
};

/// Lemma 6: estimate E[X] to additive error epsilon with success probability
/// >= 2/3 using b = O(ceil(sigma/(sqrt(p) eps) log^{3/2}(sigma/(sqrt(p) eps))))
/// charged batches. `sigma_bound` is the known upper bound on the standard
/// deviation (the paper's sigma; e.g. D for eccentricities).
///
/// Simulation note (DESIGN.md): gate-level Montanaro estimation is
/// infeasible at scale; the estimate is formed from the actually-drawn
/// samples with the residual shrunk by the 1/sqrt(b) quantum factor, so the
/// output error follows the quantum rate eps ~ sigma/(sqrt(p) b) while
/// remaining driven by real sample noise.
MeanEstimate estimate_mean(SampleOracle& oracle, double epsilon, double sigma_bound,
                           util::Rng& rng);

/// The batch count Lemma 6 charges for given sigma, epsilon, p.
std::size_t mean_estimation_schedule_batches(double sigma, double epsilon,
                                             std::size_t p);

}  // namespace qcongest::query
