#pragma once

#include <optional>

#include "src/query/oracle.hpp"
#include "src/util/rng.hpp"

namespace qcongest::query {

/// A collision in the input string: i < j with x_i == x_j.
struct CollisionPair {
  std::size_t i = 0;
  std::size_t j = 0;
  Value value = 0;

  friend bool operator==(const CollisionPair&, const CollisionPair&) = default;
};

/// Lemma 5: parallel-query element distinctness via a quantum walk on the
/// Johnson graph J(k, z) with z = k^{2/3} p^{1/3}, taking p classical walk
/// steps per quantum step (the paper's rebalanced variant of
/// Ambainis/Jeffery–Magniez–de Wolf).
///
/// Uses O(ceil((k/p)^{2/3})) charged batches. If a collision exists it is
/// returned with probability at least 2/3; if none exists the result is
/// always std::nullopt (one-sided error).
///
/// Simulation note (see DESIGN.md): the walk's state space (z-subsets of
/// [k]) is too large for amplitude-exact simulation, so the MNRS schedule is
/// charged batch-for-batch while the measurement outcome is sampled from the
/// amplitude-amplification success curve sin^2((2r+1) asin(sqrt(eps))) with
/// eps the true marked-vertex fraction; a successful measurement yields a
/// uniformly random collision-containing subset. Outputs are exact; costs
/// follow the proven schedule.
std::optional<CollisionPair> element_distinctness(BatchOracle& oracle, util::Rng& rng);

/// The batch count the Lemma 5 schedule charges for domain size k and
/// parallelism p (setup + outer iterations * update steps). Exposed for the
/// benches that compare measured vs predicted.
std::size_t element_distinctness_schedule_batches(std::size_t k, std::size_t p);

/// Exact probability that a uniform z-subset of the oracle's domain contains
/// a collision (the Johnson-walk marked-vertex fraction), computed from the
/// value-group structure via elementary symmetric polynomials in log space.
/// Falls back to Monte Carlo only for dense collision structures (> 64
/// groups of duplicates), where eps is large. Exposed for tests.
double collision_subset_fraction(const BatchOracle& oracle, std::size_t z,
                                 util::Rng& rng);

}  // namespace qcongest::query
