#include "src/query/parallel_minfind.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/query/bbht.hpp"

namespace qcongest::query {

namespace {

/// Dürr–Høyer threshold descent. `sign` is +1 for minimum, -1 for maximum
/// (we minimize sign * x).
std::size_t extremum_find(BatchOracle& oracle, util::Rng& rng, Value sign) {
  const std::size_t k = oracle.domain_size();
  const std::size_t p = std::min(oracle.parallelism(), k);

  // Total batch budget: the Dürr–Høyer analysis bounds the *expected* total
  // Grover work of the full descent by a constant times the t = 1 search
  // cost; tripling that keeps the failure probability under 1/3 (Markov).
  const std::size_t budget = static_cast<std::size_t>(std::ceil(
                                 24.0 * std::sqrt(static_cast<double>(k) /
                                                  static_cast<double>(p)))) +
                             24;
  std::size_t used = 0;

  // Start from the best element of one random batch (one charged batch).
  std::vector<std::size_t> start = rng.sample_without_replacement(k, p);
  std::vector<Value> start_values = oracle.query(start);
  ++used;
  std::size_t best_index = start[0];
  Value best = sign * start_values[0];
  for (std::size_t i = 1; i < start.size(); ++i) {
    if (sign * start_values[i] < best) {
      best = sign * start_values[i];
      best_index = start[i];
    }
  }

  // Repeatedly Grover-search for a strict improvement. The marked set is
  // simulator knowledge used only to sample measurement outcomes.
  while (used < budget) {
    std::vector<std::size_t> marked;
    for (std::size_t i = 0; i < k; ++i) {
      if (sign * oracle.peek(i) < best) marked.push_back(i);
    }
    if (marked.empty()) break;  // already optimal; remaining budget unused

    std::size_t before = oracle.ledger().batches;
    auto outcome = bbht_subset_search(oracle, marked, rng, budget - used);
    used += oracle.ledger().batches - before;
    if (!outcome) break;  // budget exhausted mid-search
    for (std::size_t i = 0; i < outcome->subset.size(); ++i) {
      if (sign * outcome->values[i] < best) {
        best = sign * outcome->values[i];
        best_index = outcome->subset[i];
      }
    }
  }
  return best_index;
}

}  // namespace

std::size_t minfind(BatchOracle& oracle, util::Rng& rng) {
  return extremum_find(oracle, rng, Value{1});
}

std::size_t maxfind(BatchOracle& oracle, util::Rng& rng) {
  return extremum_find(oracle, rng, Value{-1});
}

}  // namespace qcongest::query
