#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.hpp"

namespace qcongest::query {

/// Exact mathematics of Grover-type algorithms. Grover's operator preserves
/// the 2-dimensional subspace spanned by the uniform superpositions over
/// marked and unmarked items, so the evolution is a rotation by angle
/// 2*theta with theta = asin(sqrt(marked fraction)). These helpers let us
/// simulate Grover search *exactly in distribution* at any scale, which the
/// dense statevector simulator cannot reach.

/// theta = asin(sqrt(fraction)), fraction in [0, 1].
double grover_angle(double marked_fraction);

/// Probability that measuring after `iterations` Grover iterations yields a
/// marked item: sin^2((2j + 1) * theta).
double grover_success_probability(std::uint64_t iterations, double theta);

/// Fraction of p-element subsets of [k] containing at least one of t marked
/// elements: 1 - C(k - t, p) / C(k, p). Computed with log-binomials, stable
/// for large k.
double marked_subset_fraction(std::size_t k, std::size_t t, std::size_t p);

/// Uniformly random p-subset of [0, k) conditioned on containing at least
/// one index from `marked` (which must be non-empty, sorted, and unique).
/// Exact sampling over the hypergeometric profile of marked counts.
std::vector<std::size_t> sample_subset_with_marked(std::size_t k,
                                                   std::span<const std::size_t> marked,
                                                   std::size_t p, util::Rng& rng);

/// Uniformly random p-subset of [0, k) containing no marked index. Requires
/// k - |marked| >= p.
std::vector<std::size_t> sample_subset_without_marked(
    std::size_t k, std::span<const std::size_t> marked, std::size_t p, util::Rng& rng);

}  // namespace qcongest::query
