#pragma once

#include <cstddef>

namespace qcongest::query {

/// Accounting record for a (b, p)-parallel-query algorithm (Definition 1 of
/// the paper): `batches` counts uses of O^{\otimes p}; each batch contains at
/// most `parallelism` individual queries.
struct QueryLedger {
  std::size_t batches = 0;         // b: uses of O^{\otimes p}
  std::size_t total_queries = 0;   // sum of batch sizes actually used
  std::size_t max_batch = 0;       // largest batch observed

  void record(std::size_t batch_size) {
    ++batches;
    total_queries += batch_size;
    if (batch_size > max_batch) max_batch = batch_size;
  }

  void reset() { *this = QueryLedger{}; }
};

}  // namespace qcongest::query
