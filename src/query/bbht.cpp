#include "src/query/bbht.hpp"

#include <algorithm>
#include <cmath>

#include "src/query/grover_math.hpp"

namespace qcongest::query {

std::size_t bbht_default_cutoff(std::size_t k, std::size_t p) {
  double expected_t1 = std::sqrt(static_cast<double>(k) / static_cast<double>(p));
  return static_cast<std::size_t>(std::ceil(9.0 * expected_t1)) + 9;
}

std::optional<BbhtOutcome> bbht_subset_search(BatchOracle& oracle,
                                              std::span<const std::size_t> marked,
                                              util::Rng& rng, std::size_t max_batches) {
  const std::size_t k = oracle.domain_size();
  const std::size_t p = std::min(oracle.parallelism(), k);
  const std::size_t t = marked.size();

  std::size_t used = 0;
  auto charge = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) oracle.charge_batch();
    used += n;
  };

  // If a single batch covers the whole domain, one classical query decides.
  if (p == k) {
    if (max_batches == 0) return std::nullopt;
    std::vector<std::size_t> all(k);
    for (std::size_t i = 0; i < k; ++i) all[i] = i;
    auto values = oracle.query(all);
    ++used;
    if (t == 0) return std::nullopt;
    return BbhtOutcome{std::move(all), std::move(values)};
  }

  const double epsilon = marked_subset_fraction(k, t, p);
  const double theta = grover_angle(epsilon);
  // BBHT's critical m value: beyond 1/sqrt(epsilon) the success probability
  // of a random iterate count is ~1/2 per attempt.
  const double m_max =
      (epsilon > 0.0) ? 1.0 / std::sqrt(epsilon)
                      : std::sqrt(static_cast<double>(k) / static_cast<double>(p));
  const double lambda = 6.0 / 5.0;

  double m = 1.0;
  while (used < max_batches) {
    std::size_t j = rng.index(static_cast<std::size_t>(std::floor(m)) + 1);
    // Never exceed the remaining budget with the iterations themselves;
    // reserve one batch for the verification query.
    std::size_t budget_left = max_batches - used;
    if (budget_left == 0) break;
    if (j + 1 > budget_left) j = budget_left - 1;

    charge(j);  // j Grover iterations, each one use of O^{\otimes p}

    bool success = t > 0 && rng.bernoulli(grover_success_probability(j, theta));
    // Measurement: sample the measured subset, then verify with one charged
    // classical batch on its concrete indices.
    std::vector<std::size_t> measured =
        success ? sample_subset_with_marked(k, marked, p, rng)
                : (t < k ? sample_subset_without_marked(k, marked, p, rng)
                         : sample_subset_with_marked(k, marked, p, rng));
    if (used >= max_batches) break;
    auto values = oracle.query(measured);
    ++used;
    if (success) return BbhtOutcome{std::move(measured), std::move(values)};
    m = std::min(lambda * m, m_max);
  }
  return std::nullopt;
}

}  // namespace qcongest::query
