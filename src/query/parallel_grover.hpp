#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "src/query/oracle.hpp"
#include "src/util/rng.hpp"

namespace qcongest::query {

/// Predicate deciding whether a value is "marked" (e.g. x_i == 1).
using MarkPredicate = std::function<bool(Value)>;

/// Lemma 2, first algorithm: parallel Grover search. Finds an index i with
/// pred(x_i) using O(ceil(sqrt(k / (t p)))) charged batches (t the number of
/// marked indices), or concludes within O(sqrt(k / p)) batches that none
/// exists. Success probability >= 2/3.
std::optional<std::size_t> grover_find_one(BatchOracle& oracle, const MarkPredicate& pred,
                                           util::Rng& rng);

/// Lemma 2, second algorithm: find *all* marked indices using
/// O(sqrt(k t / p) + t) charged batches, success probability >= 2/3.
/// The returned indices are sorted and unique.
std::vector<std::size_t> grover_find_all(BatchOracle& oracle, const MarkPredicate& pred,
                                         util::Rng& rng);

/// Ablation baseline: the split approach of [Zal99; GR04] that the paper's
/// subset search improves on — partition the input into p blocks and run p
/// synchronized Grover searches, one per block. Needs O(sqrt(k/p)) batches
/// even when t marked items exist (it cannot pool them across blocks), vs
/// the subset search's O(sqrt(k/(t p))).
std::optional<std::size_t> grover_find_one_split(BatchOracle& oracle,
                                                 const MarkPredicate& pred,
                                                 util::Rng& rng);

}  // namespace qcongest::query
