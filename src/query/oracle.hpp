#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/query/ledger.hpp"

namespace qcongest::query {

/// Oracle values. Wide enough for the paper's applications: availability
/// counts (Lemma 10), summed vector entries (Lemma 12), eccentricities
/// (Lemma 21), and cycle lengths (Lemma 23).
using Value = std::int64_t;

/// A batched query oracle over the index domain [0, k).
///
/// One call to `query` or `charge_batch` represents one use of O^{\otimes p}
/// — a single *parallel* query batch in the sense of Definition 1. The
/// distributed implementation (framework::DistributedOracle) turns each
/// charged batch into real CONGEST message traffic; the ledger is the bridge
/// between query complexity and round complexity.
///
/// `peek` is *simulator* access: the quantum-evolution simulator may read the
/// truth to track amplitudes (physically, the information is present in the
/// superposed query results). Peeks are never charged and never move
/// messages; algorithms must not base *protocol decisions* on peeked values,
/// only the outcome sampling of the simulated quantum state may.
class BatchOracle {
 public:
  virtual ~BatchOracle() = default;

  /// k — the size of the query domain.
  virtual std::size_t domain_size() const = 0;

  /// p — the maximum number of simultaneous queries per batch.
  virtual std::size_t parallelism() const = 0;

  /// One charged batch resolving concrete indices to values.
  std::vector<Value> query(std::span<const std::size_t> indices);

  /// One charged batch applied to an arbitrary superposition (no classical
  /// outcome needed by the caller).
  void charge_batch();

  /// Uncharged simulator access (see class comment).
  virtual Value peek(std::size_t index) const = 0;

  const QueryLedger& ledger() const { return ledger_; }
  void reset_ledger() { ledger_.reset(); }

 protected:
  /// Resolve a batch of indices. Also invoked (with placeholder indices) for
  /// superposed batches so that distributed implementations generate the
  /// exact same communication schedule either way.
  virtual std::vector<Value> fetch(std::span<const std::size_t> indices) = 0;

 private:
  QueryLedger ledger_;
};

/// Oracle backed by a local in-memory vector; used by unit tests and to run
/// the query algorithms outside a network.
class InMemoryOracle final : public BatchOracle {
 public:
  InMemoryOracle(std::vector<Value> data, std::size_t parallelism);

  std::size_t domain_size() const override { return data_.size(); }
  std::size_t parallelism() const override { return parallelism_; }
  Value peek(std::size_t index) const override { return data_.at(index); }

 protected:
  std::vector<Value> fetch(std::span<const std::size_t> indices) override;

 private:
  std::vector<Value> data_;
  std::size_t parallelism_;
};

}  // namespace qcongest::query
