#include "src/query/oracle.hpp"

#include <stdexcept>

namespace qcongest::query {

std::vector<Value> BatchOracle::query(std::span<const std::size_t> indices) {
  if (indices.empty()) throw std::invalid_argument("BatchOracle::query: empty batch");
  if (indices.size() > parallelism()) {
    throw std::invalid_argument("BatchOracle::query: batch exceeds parallelism p");
  }
  for (std::size_t i : indices) {
    if (i >= domain_size()) {
      throw std::out_of_range("BatchOracle::query: index out of domain");
    }
  }
  ledger_.record(indices.size());
  return fetch(indices);
}

void BatchOracle::charge_batch() {
  // A superposed batch touches (up to) p positions in superposition. Run the
  // same fetch path with placeholder indices so distributed implementations
  // produce identical message schedules.
  std::vector<std::size_t> placeholder(parallelism(), 0);
  ledger_.record(parallelism());
  fetch(placeholder);
}

InMemoryOracle::InMemoryOracle(std::vector<Value> data, std::size_t parallelism)
    : data_(std::move(data)), parallelism_(parallelism) {
  if (data_.empty()) throw std::invalid_argument("InMemoryOracle: empty data");
  if (parallelism_ == 0) throw std::invalid_argument("InMemoryOracle: p == 0");
}

std::vector<Value> InMemoryOracle::fetch(std::span<const std::size_t> indices) {
  std::vector<Value> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(data_.at(i));
  return out;
}

}  // namespace qcongest::query
