#include "src/query/boosted.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qcongest::query {

std::size_t boost_repetitions(double delta) {
  if (delta <= 0.0 || delta >= 1.0) {
    throw std::invalid_argument("boost_repetitions: delta must be in (0, 1)");
  }
  // Each run fails with probability <= 1/3: r runs fail together with
  // probability <= 3^-r.
  return static_cast<std::size_t>(std::ceil(std::log(1.0 / delta) / std::log(3.0))) + 1;
}

std::optional<std::size_t> grover_find_one_boosted(BatchOracle& oracle,
                                                   const MarkPredicate& pred,
                                                   double delta, util::Rng& rng) {
  std::size_t reps = boost_repetitions(delta);
  for (std::size_t r = 0; r < reps; ++r) {
    if (auto found = grover_find_one(oracle, pred, rng)) return found;
  }
  return std::nullopt;
}

std::size_t minfind_boosted(BatchOracle& oracle, double delta, util::Rng& rng,
                            bool maximum) {
  std::size_t reps = boost_repetitions(delta);
  std::vector<std::size_t> candidates;
  candidates.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    candidates.push_back(maximum ? maxfind(oracle, rng) : minfind(oracle, rng));
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Resolve the winner with charged verification batches of up to p
  // candidates each.
  const std::size_t p = oracle.parallelism();
  std::optional<Value> best;
  std::size_t best_index = candidates.front();
  for (std::size_t off = 0; off < candidates.size(); off += p) {
    std::span<const std::size_t> chunk(candidates.data() + off,
                                       std::min(p, candidates.size() - off));
    auto values = oracle.query(chunk);
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      Value v = maximum ? -values[i] : values[i];
      if (!best || v < *best) {
        best = v;
        best_index = chunk[i];
      }
    }
  }
  return best_index;
}

std::optional<CollisionPair> element_distinctness_boosted(BatchOracle& oracle,
                                                          double delta,
                                                          util::Rng& rng) {
  std::size_t reps = boost_repetitions(delta);
  for (std::size_t r = 0; r < reps; ++r) {
    if (auto pair = element_distinctness(oracle, rng)) return pair;
  }
  return std::nullopt;
}

}  // namespace qcongest::query
