#include "src/query/grover_math.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "src/util/combinatorics.hpp"

namespace qcongest::query {

double grover_angle(double marked_fraction) {
  if (marked_fraction < 0.0 || marked_fraction > 1.0) {
    throw std::invalid_argument("grover_angle: fraction out of [0, 1]");
  }
  return std::asin(std::sqrt(marked_fraction));
}

double grover_success_probability(std::uint64_t iterations, double theta) {
  double s = std::sin((2.0 * static_cast<double>(iterations) + 1.0) * theta);
  return s * s;
}

double marked_subset_fraction(std::size_t k, std::size_t t, std::size_t p) {
  if (t > k || p > k) throw std::invalid_argument("marked_subset_fraction: t or p > k");
  if (t == 0) return 0.0;
  if (p == 0) return 0.0;
  if (t + p > k) return 1.0;  // every p-subset must hit the marked set
  // 1 - C(k-t, p)/C(k, p), via -expm1 of the log ratio for precision when
  // the fraction is tiny.
  double log_ratio = util::log_binomial(k - t, p) - util::log_binomial(k, p);
  return -std::expm1(log_ratio);
}

namespace {

/// Sample `count` distinct unmarked indices (not in `marked`, not in `used`).
std::vector<std::size_t> sample_unmarked(std::size_t k,
                                         std::span<const std::size_t> marked,
                                         std::size_t count, util::Rng& rng,
                                         const std::unordered_set<std::size_t>& used) {
  std::size_t unmarked_total = k - marked.size();
  if (count > unmarked_total) {
    throw std::invalid_argument("sample_unmarked: not enough unmarked indices");
  }
  std::unordered_set<std::size_t> marked_set(marked.begin(), marked.end());
  std::vector<std::size_t> out;
  out.reserve(count);
  if (2 * (marked.size() + count + used.size()) < k) {
    // Sparse regime: rejection sampling terminates quickly.
    std::unordered_set<std::size_t> chosen(used);
    while (out.size() < count) {
      std::size_t i = rng.index(k);
      if (marked_set.contains(i) || chosen.contains(i)) continue;
      chosen.insert(i);
      out.push_back(i);
    }
    return out;
  }
  // Dense regime: materialize the candidate pool.
  std::vector<std::size_t> pool;
  pool.reserve(unmarked_total);
  for (std::size_t i = 0; i < k; ++i) {
    if (!marked_set.contains(i) && !used.contains(i)) pool.push_back(i);
  }
  auto picks = rng.sample_without_replacement(pool.size(), count);
  for (std::size_t idx : picks) out.push_back(pool[idx]);
  return out;
}

}  // namespace

std::vector<std::size_t> sample_subset_with_marked(std::size_t k,
                                                   std::span<const std::size_t> marked,
                                                   std::size_t p, util::Rng& rng) {
  std::size_t t = marked.size();
  if (t == 0) throw std::invalid_argument("sample_subset_with_marked: no marked items");
  if (p > k) throw std::invalid_argument("sample_subset_with_marked: p > k");
  // P(j marked in subset | >= 1 marked) proportional to C(t, j) * C(k-t, p-j).
  std::size_t j_max = std::min(t, p);
  std::vector<double> log_w;
  log_w.reserve(j_max);
  double log_max = -std::numeric_limits<double>::infinity();
  for (std::size_t j = 1; j <= j_max; ++j) {
    if (p - j > k - t) {
      log_w.push_back(-std::numeric_limits<double>::infinity());
      continue;
    }
    double lw = util::log_binomial(t, j) + util::log_binomial(k - t, p - j);
    log_w.push_back(lw);
    log_max = std::max(log_max, lw);
  }
  double total = 0.0;
  std::vector<double> w(log_w.size());
  for (std::size_t i = 0; i < log_w.size(); ++i) {
    w[i] = std::exp(log_w[i] - log_max);
    total += w[i];
  }
  double r = rng.uniform() * total;
  std::size_t j = j_max;  // fallback to the last bucket on rounding
  double cumulative = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    cumulative += w[i];
    if (r < cumulative) {
      j = i + 1;
      break;
    }
  }

  std::vector<std::size_t> subset;
  subset.reserve(p);
  auto marked_picks = rng.sample_without_replacement(t, j);
  std::unordered_set<std::size_t> used;
  for (std::size_t idx : marked_picks) {
    subset.push_back(marked[idx]);
    used.insert(marked[idx]);
  }
  auto rest = sample_unmarked(k, marked, p - j, rng, used);
  subset.insert(subset.end(), rest.begin(), rest.end());
  rng.shuffle(std::span<std::size_t>(subset));
  return subset;
}

std::vector<std::size_t> sample_subset_without_marked(
    std::size_t k, std::span<const std::size_t> marked, std::size_t p, util::Rng& rng) {
  return sample_unmarked(k, marked, p, rng, {});
}

}  // namespace qcongest::query
