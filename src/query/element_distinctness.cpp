#include "src/query/element_distinctness.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <limits>

#include "src/query/grover_math.hpp"
#include "src/util/combinatorics.hpp"

namespace qcongest::query {

namespace {

struct WalkParams {
  std::size_t z;              // Johnson-graph subset size
  std::size_t setup_batches;  // ceil(z / p)
  std::size_t outer_max;      // randomized-iterate bound ~ k / (2z)
  std::size_t update;         // ceil(sqrt(z / p)) batches per outer step
};

/// Number of independent walk runs; each succeeds with probability >= 1/4
/// (BBHT randomized-iterate bound), so 6 runs give >= 1 - (3/4)^6 ~ 0.82 —
/// a comfortable margin above the promised 2/3.
constexpr std::size_t kWalkRuns = 6;

WalkParams walk_params(std::size_t k, std::size_t p) {
  double kd = static_cast<double>(k), pd = static_cast<double>(p);
  auto z = static_cast<std::size_t>(
      std::ceil(std::pow(kd, 2.0 / 3.0) * std::pow(pd, 1.0 / 3.0)));
  // The proof needs p < z <= k/2; clamp accordingly (the callers below only
  // invoke the walk when p < k/8, where the clamps are non-binding anyway).
  z = std::clamp<std::size_t>(z, std::min(p + 1, k / 2), std::max<std::size_t>(k / 2, 2));
  WalkParams w;
  w.z = z;
  // The algorithm only knows eps >= z(z-1)/(k(k-1)) (one collision pair).
  // With theta_lb = asin(sqrt(eps_lb)), a uniformly random iterate count in
  // [0, outer_max] with outer_max >= 1/sin(2 theta_lb) succeeds w.p. >= 1/4
  // whatever the true (larger) fraction is — no overshoot failure mode.
  double eps_lb = static_cast<double>(z) * (static_cast<double>(z) - 1.0) /
                  (kd * (kd - 1.0));
  double theta_lb = grover_angle(std::min(eps_lb, 1.0));
  w.outer_max = static_cast<std::size_t>(std::ceil(1.0 / std::sin(2.0 * theta_lb)));
  w.setup_batches = (z + p - 1) / p;
  w.update = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(z) / pd)));
  return w;
}

/// True iff the subset contains two indices with equal (peeked) values.
std::optional<CollisionPair> collision_in(const BatchOracle& oracle,
                                          std::span<const std::size_t> subset) {
  std::unordered_map<Value, std::size_t> seen;
  seen.reserve(subset.size());
  for (std::size_t idx : subset) {
    Value v = oracle.peek(idx);
    auto [it, inserted] = seen.try_emplace(v, idx);
    if (!inserted) {
      std::size_t a = it->second, b = idx;
      if (a > b) std::swap(a, b);
      return CollisionPair{a, b, v};
    }
  }
  return std::nullopt;
}

bool has_any_collision(const BatchOracle& oracle) {
  std::unordered_set<Value> seen;
  seen.reserve(oracle.domain_size());
  for (std::size_t i = 0; i < oracle.domain_size(); ++i) {
    if (!seen.insert(oracle.peek(i)).second) return true;
  }
  return false;
}


/// Uniformly random z-subset containing a collision (rejection sampling with
/// a constructive fallback so the simulator never stalls on tiny eps).
std::vector<std::size_t> sample_marked_subset(const BatchOracle& oracle, std::size_t z,
                                              double eps, util::Rng& rng) {
  const std::size_t k = oracle.domain_size();
  const auto max_tries =
      static_cast<std::size_t>(std::min(1e6, std::ceil(20.0 / std::max(eps, 1e-9))));
  for (std::size_t attempt = 0; attempt < max_tries; ++attempt) {
    auto subset = rng.sample_without_replacement(k, z);
    if (collision_in(oracle, subset)) return subset;
  }
  // Constructive fallback: place one uniformly random colliding pair, fill
  // the rest uniformly. (Distribution of the *pair* is still uniform.)
  // Ordered containers: hash-ordered iteration here would make which pair
  // the rng.index pick lands on — and the returned subset order — depend on
  // the standard library's hash (qlint: unordered-iter).
  std::map<Value, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < k; ++i) groups[oracle.peek(i)].push_back(i);
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& [value, members] : groups) {
    for (std::size_t a = 0; a + 1 < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        pairs.emplace_back(members[a], members[b]);
      }
    }
  }
  auto [i, j] = pairs[rng.index(pairs.size())];
  std::set<std::size_t> chosen{i, j};
  while (chosen.size() < z) chosen.insert(rng.index(k));
  return {chosen.begin(), chosen.end()};
}

}  // namespace

/// Marked-vertex fraction of J(k, z): probability that a uniform z-subset
/// contains a collision, computed *exactly* from the multiset structure of
/// the input. Group the k indices by value (sizes g_1..g_m); a subset is
/// collision-free iff it takes at most one index per group, so
///   P(no collision) = e_z(g_1, ..., g_m) / C(k, z),
/// the elementary symmetric polynomial. With b groups of size >= 2 and m1
/// singletons, e_z = sum_j c_j * C(m1, z - j) where the c_j come from the
/// degree-b polynomial prod_i (1 + g_i x) — evaluated in log space for
/// stability; the tiny-eps regime is handled through log1p/expm1.
double collision_subset_fraction(const BatchOracle& oracle, std::size_t z,
                              util::Rng& rng) {
  const std::size_t k = oracle.domain_size();
  // Ordered so the fp summation order in `big`/`c` below is fixed across
  // standard libraries (qlint: unordered-iter).
  std::map<Value, std::size_t> group_size;
  for (std::size_t i = 0; i < k; ++i) ++group_size[oracle.peek(i)];

  std::vector<double> big;  // sizes of the groups with >= 2 members
  std::size_t singletons = 0;
  for (const auto& [value, size] : group_size) {
    if (size >= 2) {
      big.push_back(static_cast<double>(size));
    } else {
      ++singletons;
    }
  }
  if (big.empty()) return 0.0;

  if (big.size() > 64) {
    // Dense collision structure: Monte Carlo is both cheap and accurate
    // because eps is large.
    const int samples = 500;
    int hits = 0;
    for (int s = 0; s < samples; ++s) {
      auto subset = rng.sample_without_replacement(k, z);
      if (collision_in(oracle, subset)) ++hits;
    }
    return std::clamp(static_cast<double>(hits) / samples, 1e-9, 1.0);
  }

  // Coefficients of prod_i (1 + g_i x): c[j] = e_j(big sizes).
  std::vector<double> c{1.0};
  for (double g : big) {
    c.push_back(0.0);
    for (std::size_t j = c.size() - 1; j > 0; --j) c[j] += g * c[j - 1];
  }

  // log P(no collision) = logsumexp_j(log c_j + log C(m1, z-j)) - log C(k, z).
  double log_ckz = util::log_binomial(k, z);
  double max_term = -std::numeric_limits<double>::infinity();
  std::vector<double> terms;
  for (std::size_t j = 0; j < c.size(); ++j) {
    if (c[j] <= 0.0 || z < j || z - j > singletons) continue;
    double t = std::log(c[j]) + util::log_binomial(singletons, z - j) - log_ckz;
    terms.push_back(t);
    max_term = std::max(max_term, t);
  }
  if (terms.empty()) return 1.0;  // no collision-free subset exists
  double sum = 0.0;
  for (double t : terms) sum += std::exp(t - max_term);
  double log_no_collision = max_term + std::log(sum);
  if (log_no_collision >= 0.0) return 0.0;
  double eps = -std::expm1(log_no_collision);
  return std::clamp(eps, 0.0, 1.0);
}

std::size_t element_distinctness_schedule_batches(std::size_t k, std::size_t p) {
  p = std::min(p, k);
  if (p * 8 >= k) return (k + p - 1) / p;  // fully query the domain
  WalkParams w = walk_params(k, p);
  return kWalkRuns * (w.setup_batches + w.outer_max * w.update);
}

std::optional<CollisionPair> element_distinctness(BatchOracle& oracle, util::Rng& rng) {
  const std::size_t k = oracle.domain_size();
  const std::size_t p = std::min(oracle.parallelism(), k);

  // Large-p regime (p >= k/8 in the paper): a constant number of parallel
  // queries cover the whole input; query everything and answer exactly.
  if (p * 8 >= k) {
    std::vector<std::size_t> batch;
    std::unordered_map<Value, std::size_t> seen;
    std::optional<CollisionPair> found;
    for (std::size_t start = 0; start < k; start += p) {
      batch.clear();
      for (std::size_t i = start; i < std::min(start + p, k); ++i) batch.push_back(i);
      auto values = oracle.query(batch);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        auto [it, inserted] = seen.try_emplace(values[i], batch[i]);
        if (!inserted && !found) {
          found = CollisionPair{it->second, batch[i], values[i]};
        }
      }
    }
    return found;
  }

  WalkParams w = walk_params(k, p);
  const bool any_collision = has_any_collision(oracle);
  const double eps = any_collision ? collision_subset_fraction(oracle, w.z, rng) : 0.0;
  const double theta = grover_angle(eps);

  for (std::size_t run = 0; run < kWalkRuns; ++run) {
    // Setup: query a uniformly random z-subset, ceil(z/p) charged batches.
    auto start_subset = rng.sample_without_replacement(k, w.z);
    for (std::size_t off = 0; off < w.z; off += p) {
      std::span<const std::size_t> chunk(start_subset.data() + off,
                                         std::min(p, w.z - off));
      oracle.query(chunk);
    }
    // Free check on the setup subset (C = 0 in the paper's schedule).
    if (auto pair = collision_in(oracle, start_subset)) return pair;

    // Walk phase: a uniformly random number r <= outer_max of amplitude-
    // amplification steps, each costing `update` charged batches (p
    // classical Johnson steps folded into one quantum step).
    std::size_t r = rng.index(w.outer_max + 1);
    for (std::size_t step = 0; step < r; ++step) {
      for (std::size_t u = 0; u < w.update; ++u) oracle.charge_batch();
    }

    if (!any_collision) continue;  // one-sided error: never a false positive

    if (rng.bernoulli(grover_success_probability(r, theta))) {
      auto measured = sample_marked_subset(oracle, w.z, eps, rng);
      return collision_in(oracle, measured);
    }
  }
  return std::nullopt;
}

}  // namespace qcongest::query
