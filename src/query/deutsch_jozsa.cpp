#include "src/query/deutsch_jozsa.hpp"

#include <cmath>
#include <stdexcept>

#include "src/quantum/qudit.hpp"

namespace qcongest::query {

DjVerdict deutsch_jozsa(BatchOracle& oracle) {
  const std::size_t k = oracle.domain_size();
  if (k == 0 || k % 2 != 0) {
    throw std::invalid_argument("deutsch_jozsa: k must be even and positive");
  }

  // Validate the promise with simulator access; an input that is neither
  // constant nor balanced makes the problem ill-defined.
  std::size_t ones = 0;
  for (std::size_t i = 0; i < k; ++i) {
    Value v = oracle.peek(i);
    if (v != 0 && v != 1) throw std::invalid_argument("deutsch_jozsa: non-bit value");
    ones += static_cast<std::size_t>(v);
  }
  if (ones != 0 && ones != k && ones != k / 2) {
    throw std::invalid_argument("deutsch_jozsa: promise violated");
  }

  // One charged batch: the single superposed query over all of [k].
  oracle.charge_batch();

  auto state = quantum::QuditState::uniform(k);
  state.apply_phase_oracle([&](std::size_t i) { return oracle.peek(i) != 0; });
  double overlap = std::norm(state.overlap_with_uniform());
  // Given the promise, overlap is exactly 1 (constant) or exactly 0
  // (balanced); threshold at 1/2 for floating-point robustness.
  return overlap > 0.5 ? DjVerdict::kConstant : DjVerdict::kBalanced;
}

}  // namespace qcongest::query
