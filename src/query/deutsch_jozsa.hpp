#pragma once

#include "src/query/oracle.hpp"

namespace qcongest::query {

enum class DjVerdict { kConstant, kBalanced };

/// The Deutsch–Jozsa algorithm [DJ92]: decides, with zero error, whether a
/// promise input x in {0,1}^k (k even, |x| in {0, k/2, k}) is constant or
/// balanced, using exactly one charged query batch.
///
/// Simulated exactly in C^k with the qudit register: prepare the uniform
/// superposition, apply the phase oracle, and measure the overlap with the
/// uniform state (1 for constant, 0 for balanced — deterministically, given
/// the promise).
///
/// Throws std::invalid_argument if the input violates the promise (the
/// algorithm's output would be undefined).
DjVerdict deutsch_jozsa(BatchOracle& oracle);

}  // namespace qcongest::query
