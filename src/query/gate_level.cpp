#include "src/query/gate_level.hpp"

#include <cmath>
#include <stdexcept>

#include "src/quantum/arithmetic.hpp"
#include "src/quantum/oracle.hpp"
#include "src/quantum/qft.hpp"
#include "src/quantum/statevector.hpp"
#include "src/util/combinatorics.hpp"

namespace qcongest::query {

using quantum::BasisState;
using quantum::Circuit;

namespace {

/// Phase-flip of the single basis state `s` on qubits [0, width):
/// X-conjugate so that s maps to |1...1>, then apply a (width-1)-controlled Z.
void append_flip_of_state(Circuit& c, unsigned width, BasisState s) {
  for (unsigned q = 0; q < width; ++q) {
    if (((s >> q) & 1) == 0) c.x(q);
  }
  if (width == 1) {
    c.z(0);
  } else {
    std::vector<unsigned> controls;
    for (unsigned q = 0; q + 1 < width; ++q) controls.push_back(q);
    c.controlled(quantum::gates::pauli_z(), controls, width - 1, "mcz");
  }
  for (unsigned q = 0; q < width; ++q) {
    if (((s >> q) & 1) == 0) c.x(q);
  }
}

}  // namespace

Circuit phase_flip_circuit(unsigned width, const std::vector<BasisState>& marked) {
  Circuit c(width);
  for (BasisState s : marked) {
    if (s >= (BasisState{1} << width)) {
      throw std::invalid_argument("phase_flip_circuit: state out of range");
    }
    append_flip_of_state(c, width, s);
  }
  return c;
}

Circuit amplification_iterate_circuit(const Circuit& prep,
                                      const std::vector<BasisState>& marked) {
  const unsigned width = prep.num_qubits();
  Circuit c(width);
  // S_f
  c.append(phase_flip_circuit(width, marked));
  // A^{-1}
  c.append(prep.inverse());
  // S_0: phase-flip |0...0>
  append_flip_of_state(c, width, 0);
  // A
  c.append(prep);
  // Global -1 (X Z X Z = -I on one qubit), so controlled-Q is exact.
  c.x(0).z(0).x(0).z(0);
  return c;
}

Circuit grover_iterate_circuit(unsigned width, const std::vector<BasisState>& marked) {
  Circuit prep(width);
  for (unsigned q = 0; q < width; ++q) prep.h(q);
  return amplification_iterate_circuit(prep, marked);
}

BasisState gate_level_grover_search(unsigned width,
                                    const std::vector<BasisState>& marked,
                                    util::Rng& rng) {
  if (marked.empty()) {
    throw std::invalid_argument("gate_level_grover_search: no marked states");
  }
  const double dim = static_cast<double>(BasisState{1} << width);
  const double theta = std::asin(std::sqrt(static_cast<double>(marked.size()) / dim));
  const auto iterations =
      static_cast<std::size_t>(std::floor(M_PI / (4.0 * theta)));

  quantum::Statevector state(width);
  state.h_all();
  Circuit q = grover_iterate_circuit(width, marked);
  for (std::size_t i = 0; i < iterations; ++i) q.apply_to(state);
  return state.measure_all(rng);
}

double gate_level_phase_estimation(const Circuit& u, const Circuit& prep,
                                   unsigned precision, util::Rng& rng) {
  const unsigned m = u.num_qubits();
  if (prep.num_qubits() != m) {
    throw std::invalid_argument("phase estimation: prep/u width mismatch");
  }
  const unsigned total = m + precision;
  quantum::Statevector state(total);
  prep.embedded(total, 0).apply_to(state);
  for (unsigned j = 0; j < precision; ++j) state.h(m + j);

  // Controlled powers: qubit m + j controls U^{2^j}.
  Circuit u_embedded = u.embedded(total, 0);
  for (unsigned j = 0; j < precision; ++j) {
    Circuit controlled = u_embedded.controlled_on(m + j);
    const std::uint64_t reps = std::uint64_t{1} << j;
    for (std::uint64_t r = 0; r < reps; ++r) controlled.apply_to(state);
  }

  quantum::inverse_qft_circuit(total, m, precision).apply_to(state);

  // Measure the precision register only (via its marginal distribution).
  std::vector<double> dist = state.marginal(m, precision);
  std::size_t outcome = quantum::CumulativeSampler(dist).sample(rng);
  return static_cast<double>(outcome) / static_cast<double>(dist.size());
}

double gate_level_amplitude_estimation(unsigned width,
                                       const std::vector<BasisState>& marked,
                                       unsigned precision, util::Rng& rng) {
  Circuit prep(width);
  for (unsigned q = 0; q < width; ++q) prep.h(q);
  Circuit q_iterate = grover_iterate_circuit(width, marked);
  double phase = gate_level_phase_estimation(q_iterate, prep, precision, rng);
  // Eigenphases of Q are +-2 theta_a with a = sin^2(theta_a); the measured
  // y/2^t estimates theta_a / pi (or 1 - theta_a / pi).
  double s = std::sin(M_PI * phase);
  return s * s;
}

bool gate_level_deutsch_jozsa_is_constant(
    unsigned width, const std::function<bool(std::uint64_t)>& f) {
  // |0^n>|1>, Hadamard everything, query the bit oracle (phase kickback
  // through the |-> ancilla), Hadamard the index register; the input is
  // constant iff the index register returns to |0^n> (probability exactly
  // 1 or 0 under the promise).
  quantum::Statevector state(width + 1);
  state.x(width);
  state.h_all();
  quantum::apply_bit_oracle(state, 0, width, width, f);
  for (unsigned q = 0; q < width; ++q) state.h(q);

  double p_zero = 0.0;
  for (quantum::BasisState b : {quantum::BasisState{0},
                                quantum::BasisState{1} << width}) {
    p_zero += state.probability(b);
  }
  return p_zero > 0.5;
}

std::size_t gate_level_count_marked(unsigned width,
                                    const std::vector<quantum::BasisState>& marked,
                                    unsigned precision, util::Rng& rng) {
  double a = gate_level_amplitude_estimation(width, marked, precision, rng);
  double dim = static_cast<double>(quantum::BasisState{1} << width);
  return static_cast<std::size_t>(std::lround(a * dim));
}

std::size_t gate_level_minfind(const std::vector<std::uint64_t>& data,
                               unsigned value_width, util::Rng& rng) {
  const std::size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("gate_level_minfind: size must be a power of two");
  }
  const auto idx_w = static_cast<unsigned>(util::ceil_log2(n));
  if (idx_w == 0) return 0;
  for (std::uint64_t v : data) {
    if (v >= (std::uint64_t{1} << value_width)) {
      throw std::invalid_argument("gate_level_minfind: value out of range");
    }
  }
  // Layout: index [0, idx_w), value, work, ancilla, flag.
  const unsigned val_off = idx_w;
  const unsigned work_off = idx_w + value_width;
  const unsigned anc = idx_w + 2 * value_width;
  const unsigned flag = anc + 1;
  const unsigned total = flag + 1;
  if (total > quantum::Statevector::kMaxQubits) {
    throw std::invalid_argument("gate_level_minfind: too many qubits");
  }

  auto apply_threshold_phase = [&](quantum::Statevector& state,
                                   std::uint64_t threshold) {
    quantum::apply_value_oracle(state, 0, idx_w, val_off, value_width,
                                [&](std::uint64_t i) { return data[i]; });
    quantum::Circuit cmp = quantum::less_than_constant_circuit(
        total, val_off, work_off, anc, flag, value_width, threshold);
    cmp.apply_to(state);
    state.z(flag);
    cmp.inverse().apply_to(state);
    quantum::apply_value_oracle(state, 0, idx_w, val_off, value_width,
                                [&](std::uint64_t i) { return data[i]; });
  };
  auto apply_diffusion = [&](quantum::Statevector& state) {
    for (unsigned q = 0; q < idx_w; ++q) state.h(q);
    quantum::apply_phase_oracle(state, 0, idx_w,
                                [](std::uint64_t i) { return i == 0; });
    for (unsigned q = 0; q < idx_w; ++q) state.h(q);
  };

  // Durr-Hoyer descent with a BBHT inner loop, all at gate level.
  std::size_t best_index = rng.index(n);
  std::uint64_t best = data[best_index];
  auto budget = static_cast<std::size_t>(
      24.0 * std::sqrt(static_cast<double>(n)) + 24.0);
  double m = 1.0;
  const double lambda = 6.0 / 5.0;
  while (budget > 0) {
    std::size_t j = rng.index(static_cast<std::size_t>(m) + 1);
    j = std::min(j, budget);
    quantum::Statevector state(total);
    for (unsigned q = 0; q < idx_w; ++q) state.h(q);
    for (std::size_t it = 0; it < j; ++it) {
      apply_threshold_phase(state, best);
      apply_diffusion(state);
    }
    budget -= j;
    if (budget == 0) break;
    --budget;  // the verification query
    std::uint64_t measured = state.measure_all(rng) & ((std::uint64_t{1} << idx_w) - 1);
    if (data[measured] < best) {
      best = data[measured];
      best_index = measured;
      m = 1.0;
    } else {
      m = std::min(lambda * m, std::sqrt(static_cast<double>(n)));
    }
  }
  return best_index;
}

}  // namespace qcongest::query
