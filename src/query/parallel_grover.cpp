#include "src/query/parallel_grover.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/query/bbht.hpp"
#include "src/query/grover_math.hpp"

namespace qcongest::query {

namespace {

/// Simulator-side view of the marked set (uncharged peeks; see
/// BatchOracle::peek).
std::vector<std::size_t> collect_marked(const BatchOracle& oracle,
                                        const MarkPredicate& pred) {
  std::vector<std::size_t> marked;
  for (std::size_t i = 0; i < oracle.domain_size(); ++i) {
    if (pred(oracle.peek(i))) marked.push_back(i);
  }
  return marked;
}

}  // namespace

std::optional<std::size_t> grover_find_one(BatchOracle& oracle, const MarkPredicate& pred,
                                           util::Rng& rng) {
  auto marked = collect_marked(oracle, pred);
  std::size_t cutoff = bbht_default_cutoff(oracle.domain_size(), oracle.parallelism());
  auto outcome = bbht_subset_search(oracle, marked, rng, cutoff);
  if (!outcome) return std::nullopt;
  // The verification batch returned the values of the measured subset; pick
  // a marked index among them (one must exist for a successful measurement).
  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < outcome->subset.size(); ++i) {
    if (pred(outcome->values[i])) hits.push_back(outcome->subset[i]);
  }
  if (hits.empty()) return std::nullopt;  // defensive; cannot happen
  return hits[rng.index(hits.size())];
}

std::vector<std::size_t> grover_find_all(BatchOracle& oracle, const MarkPredicate& pred,
                                         util::Rng& rng) {
  auto marked = collect_marked(oracle, pred);
  // Ordered so the subset handed to each search round is independent of the
  // standard library's hash (qlint: unordered-iter).
  std::set<std::size_t> remaining(marked.begin(), marked.end());
  std::vector<std::size_t> found;

  // Repeatedly search for a not-yet-found marked index. Every successful
  // measurement may surface several new indices from its verification batch.
  // The loop ends when a full-cutoff search comes up empty, which (for
  // t' = 0 remaining) is the correct conclusion, and for t' >= 1 happens
  // with probability <= 1/3 in total (the paper's Markov-stopping argument).
  std::size_t cutoff = bbht_default_cutoff(oracle.domain_size(), oracle.parallelism());
  while (true) {
    std::vector<std::size_t> rem_sorted(remaining.begin(), remaining.end());
    auto outcome = bbht_subset_search(oracle, rem_sorted, rng, cutoff);
    if (!outcome) break;
    bool progress = false;
    for (std::size_t i = 0; i < outcome->subset.size(); ++i) {
      if (pred(outcome->values[i]) && remaining.erase(outcome->subset[i]) > 0) {
        found.push_back(outcome->subset[i]);
        progress = true;
      }
    }
    if (!progress) break;  // defensive; a successful measurement always progresses
  }
  std::sort(found.begin(), found.end());
  return found;
}

std::optional<std::size_t> grover_find_one_split(BatchOracle& oracle,
                                                 const MarkPredicate& pred,
                                                 util::Rng& rng) {
  const std::size_t k = oracle.domain_size();
  const std::size_t p = std::min(oracle.parallelism(), k);
  auto marked = collect_marked(oracle, pred);

  // Block i holds the indices congruent to i mod p; per-block BBHT
  // processes advance one Grover iteration per global batch.
  struct Block {
    std::size_t size = 0;
    std::size_t marked = 0;
    double theta = 0.0;
    double m = 1.0;
    std::size_t attempt_left = 0;   // iterations remaining in current attempt
    std::size_t attempt_len = 0;
  };
  std::vector<Block> blocks(p);
  for (std::size_t i = 0; i < k; ++i) ++blocks[i % p].size;
  for (std::size_t idx : marked) ++blocks[idx % p].marked;
  for (Block& b : blocks) {
    double frac = b.size > 0 ? static_cast<double>(b.marked) /
                                   static_cast<double>(b.size)
                             : 0.0;
    b.theta = grover_angle(frac);
    b.attempt_len = rng.index(static_cast<std::size_t>(b.m) + 1);
    b.attempt_left = b.attempt_len;
  }

  const std::size_t cutoff = bbht_default_cutoff(k, p);
  std::size_t used = 0;
  const double lambda = 6.0 / 5.0;
  while (used + 1 < cutoff) {
    oracle.charge_batch();  // one Grover iteration in every block at once
    ++used;
    for (std::size_t i = 0; i < p; ++i) {
      Block& b = blocks[i];
      if (b.size == 0) continue;
      if (b.attempt_left > 0) {
        --b.attempt_left;
        continue;
      }
      // Attempt complete: measure this block.
      if (b.marked > 0 &&
          rng.bernoulli(grover_success_probability(b.attempt_len, b.theta))) {
        // Verification batch on the measured indices (one per block slot).
        std::vector<std::size_t> batch;
        std::size_t hit = marked[rng.index(marked.size())];
        while (hit % p != i) hit = marked[rng.index(marked.size())];
        batch.push_back(hit);
        auto values = oracle.query(batch);
        ++used;
        if (pred(values[0])) return hit;
      }
      double m_max = std::sqrt(static_cast<double>(b.size));
      b.m = std::min(lambda * b.m, m_max);
      b.attempt_len = rng.index(static_cast<std::size_t>(b.m) + 1);
      b.attempt_left = b.attempt_len;
    }
  }
  return std::nullopt;
}

}  // namespace qcongest::query
