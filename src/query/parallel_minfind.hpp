#pragma once

#include <cstddef>

#include "src/query/oracle.hpp"
#include "src/util/rng.hpp"

namespace qcongest::query {

/// Lemma 3: parallel Dürr–Høyer minimum (or maximum) finding.
///
/// Returns an index i such that x_i = min_j x_j (resp. max) with probability
/// at least 2/3, using O(ceil(sqrt(k / p))) charged batches. When the
/// extremum is attained by at least l indices the expected batch count drops
/// to O(ceil(sqrt(k / (l p)))), which the implementation inherits for free
/// from the exact-in-distribution Grover core.
std::size_t minfind(BatchOracle& oracle, util::Rng& rng);
std::size_t maxfind(BatchOracle& oracle, util::Rng& rng);

}  // namespace qcongest::query
