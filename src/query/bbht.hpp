#pragma once

#include <optional>
#include <span>
#include <vector>

#include "src/query/oracle.hpp"
#include "src/util/rng.hpp"

namespace qcongest::query {

/// Outcome of a successful subset-Grover measurement: the measured p-subset
/// and the (charged) query results for its indices.
struct BbhtOutcome {
  std::vector<std::size_t> subset;
  std::vector<Value> values;
};

/// Boyer–Brassard–Høyer–Tapp search over p-element subsets of [0, k), the
/// core of Lemma 2's parallel Grover. A subset is marked iff it contains an
/// index from `marked`. Every Grover iteration charges one batch on the
/// oracle, and every measurement is verified by one charged batch on the
/// measured subset's concrete indices. The evolution is simulated exactly in
/// distribution via the two-dimensional invariant subspace (grover_math).
///
/// `marked` (sorted, unique) is simulator knowledge used only to sample the
/// measurement outcomes; it never influences which batches are charged
/// beyond what the real algorithm's own measurements would.
///
/// Gives up once `max_batches` batches have been charged to this call
/// (returning std::nullopt, as the real algorithm would when it cuts off).
/// Returns std::nullopt immediately-after-cutoff also when `marked` is empty.
std::optional<BbhtOutcome> bbht_subset_search(BatchOracle& oracle,
                                              std::span<const std::size_t> marked,
                                              util::Rng& rng, std::size_t max_batches);

/// The cutoff used for "conclude there is no marked element w.p. >= 2/3":
/// a small constant times ceil(sqrt(k / p)) (the t = 1 expected cost).
std::size_t bbht_default_cutoff(std::size_t k, std::size_t p);

}  // namespace qcongest::query
