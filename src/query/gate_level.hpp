#pragma once

#include <cstdint>
#include <vector>

#include "src/quantum/circuit.hpp"
#include "src/util/rng.hpp"

namespace qcongest::query {

/// Gate-level constructions on the dense statevector simulator. These are
/// only feasible at toy scale; they exist to cross-validate the
/// exact-in-distribution simulations (grover_math, mean_estimation) that the
/// distributed algorithms use at scale, and to provide honest gate-level
/// implementations of the Section 6 building blocks (amplitude
/// amplification, phase estimation, amplitude estimation).

/// Phase-flip oracle S_f on `width` qubits: |s> -> -|s> for s in `marked`,
/// built from X-conjugated multi-controlled Z gates.
quantum::Circuit phase_flip_circuit(unsigned width,
                                    const std::vector<quantum::BasisState>& marked);

/// The BHMT amplitude-amplification iterate Q = -A S_0 A^{-1} S_f for an
/// arbitrary state-preparation circuit A (Lemma 27's iterate, including the
/// global -1 so that controlled-Q is correct for amplitude estimation).
quantum::Circuit amplification_iterate_circuit(
    const quantum::Circuit& prep, const std::vector<quantum::BasisState>& marked);

/// The standard Grover iterate: the special case A = H^{\otimes width}.
quantum::Circuit grover_iterate_circuit(unsigned width,
                                        const std::vector<quantum::BasisState>& marked);

/// Gate-level Grover search: runs the optimal number of iterations for
/// |marked| targets on `width` qubits and measures. Returns the measured
/// basis state.
quantum::BasisState gate_level_grover_search(
    unsigned width, const std::vector<quantum::BasisState>& marked, util::Rng& rng);

/// Gate-level quantum phase estimation. `u` acts on m qubits; `prep` maps
/// |0^m> to a state (ideally an eigenstate of u). Returns the measured phase
/// estimate in [0, 1) using `precision` ancilla qubits.
double gate_level_phase_estimation(const quantum::Circuit& u,
                                   const quantum::Circuit& prep, unsigned precision,
                                   util::Rng& rng);

/// Gate-level amplitude estimation (BHMT canonical form): estimates
/// a = |marked| / 2^width by phase estimation on the Grover iterate.
double gate_level_amplitude_estimation(unsigned width,
                                       const std::vector<quantum::BasisState>& marked,
                                       unsigned precision, util::Rng& rng);

/// Gate-level Deutsch–Jozsa on the qubit simulator: f over [2^width] is
/// promised constant or balanced; returns true iff constant, with zero
/// error. Cross-validates the C^k qudit implementation used at scale.
bool gate_level_deutsch_jozsa_is_constant(
    unsigned width, const std::function<bool(std::uint64_t)>& f);

/// Gate-level quantum counting: estimates |marked| among [0, 2^width) by
/// amplitude estimation, rounded to the nearest integer. With `precision`
/// >= width + 2 the count is exact with high probability.
std::size_t gate_level_count_marked(unsigned width,
                                    const std::vector<quantum::BasisState>& marked,
                                    unsigned precision, util::Rng& rng);

/// Gate-level Dürr–Høyer minimum finding at toy scale: the threshold
/// comparisons run as real reversible arithmetic (value oracle + CDKM
/// comparator, quantum/arithmetic.hpp), the Grover iterations as real
/// gates. data.size() must be a power of two (<= 64 for tractable widths);
/// values must fit in `value_width` bits. Succeeds w.p. >= 2/3 —
/// cross-validates the distribution-exact query::minfind used at scale.
std::size_t gate_level_minfind(const std::vector<std::uint64_t>& data,
                               unsigned value_width, util::Rng& rng);

}  // namespace qcongest::query
