#include "src/recover/checkpoint.hpp"

#include <utility>

namespace qcongest::recover {
namespace {

// Same 64-bit finalizer the reliable transport uses for frame checksums; a
// chained fold over it gives an order-sensitive digest of the word stream.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t digest(const Snapshot& s) {
  std::uint64_t h = mix64(0x5eedc0deULL);
  h = mix64(h ^ s.version);
  h = mix64(h ^ static_cast<std::uint64_t>(s.round));
  h = mix64(h ^ static_cast<std::uint64_t>(s.words.size()));
  for (std::int64_t w : s.words) {
    h = mix64(h ^ static_cast<std::uint64_t>(w));
  }
  return h;
}

}  // namespace

void Snapshot::seal() { checksum = digest(*this); }

bool Snapshot::intact() const { return checksum == digest(*this); }

void CheckpointStore::reset(std::size_t num_nodes) {
  slots_.assign(num_nodes, Snapshot{});
  present_.assign(num_nodes, 0);
}

void CheckpointStore::put(net::NodeId node, Snapshot snapshot) {
  snapshot.seal();
  slots_[node] = std::move(snapshot);
  present_[node] = 1;
}

const Snapshot* CheckpointStore::latest(net::NodeId node) const {
  if (node >= slots_.size() || present_[node] == 0) return nullptr;
  return &slots_[node];
}

std::size_t CheckpointStore::stored() const {
  std::size_t count = 0;
  for (unsigned char p : present_) count += p;
  return count;
}

}  // namespace qcongest::recover
