#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/net/graph.hpp"

namespace qcongest::recover {

/// One durable program snapshot: the word-serialized state a NodeProgram
/// opted to persist (NodeProgram::snapshot), tagged with the program's
/// state-format version and the round the state is valid for, and sealed
/// with a checksum so stable storage that rotted is detected at restore
/// time instead of silently resurrecting garbage state.
struct Snapshot {
  /// The program's state_version() at snapshot time; restore() refuses a
  /// version it does not understand.
  std::uint32_t version = 0;
  /// The snapshot captures the state after executing rounds [0, round).
  std::size_t round = 0;
  std::vector<std::int64_t> words;
  std::uint64_t checksum = 0;

  /// Compute and store the checksum over (version, round, words).
  void seal();
  /// True when the stored checksum matches the contents.
  bool intact() const;
};

/// Per-node stable storage for checkpoints. The store is owned by the
/// engine — NOT by the programs — which is exactly what makes it survive an
/// amnesia crash: the node's volatile program state is destroyed, the
/// store's copy is not. Only the latest snapshot per node is retained (a
/// recovering node always replays forward from its newest checkpoint).
class CheckpointStore {
 public:
  /// Drop everything and size the store for `num_nodes` slots. Called at
  /// the start of every engine run: checkpoints never leak across protocol
  /// phases (each framework phase is its own run and recovers within it).
  void reset(std::size_t num_nodes);

  /// Seal and store `snapshot` as node `node`'s latest checkpoint.
  void put(net::NodeId node, Snapshot snapshot);

  /// The node's latest checkpoint, or nullptr when it never checkpointed.
  /// The caller must still verify intact() — a rotted checkpoint is
  /// returned so the failure can be diagnosed, not hidden.
  const Snapshot* latest(net::NodeId node) const;

  /// Number of nodes currently holding a checkpoint.
  std::size_t stored() const;

 private:
  std::vector<Snapshot> slots_;
  std::vector<unsigned char> present_;
};

/// When checkpoints are written.
struct CheckpointPolicy {
  /// Snapshot every k rounds (virtual rounds under the reliable transport,
  /// physical rounds under the direct transport). 0 disables periodic
  /// checkpoints — recovery then replays from the start of the phase and
  /// per-link send logs are never pruned.
  std::size_t every_rounds = 0;
  /// Snapshot the initial state at the start of every engine run. Framework
  /// phases are separate engine runs whose boundaries the RoundProfiler
  /// marks as phase spans, so this is exactly the "checkpoint at framework
  /// phase boundaries" knob.
  bool at_phase_start = true;

  bool periodic() const { return every_rounds > 0; }
  /// True when a periodic checkpoint is due after executing `rounds` rounds.
  bool due(std::size_t rounds) const {
    return every_rounds > 0 && rounds > 0 && rounds % every_rounds == 0;
  }
};

/// Engine-level recovery configuration (apps wire it via NetOptions). The
/// per-run program factory is separate — protocol library functions install
/// it with Engine::set_program_factory for the duration of their run.
struct RecoveryPolicy {
  /// Master switch: amnesia crashes are survivable only when enabled (and a
  /// program factory is installed for the run).
  bool enabled = false;
  CheckpointPolicy checkpoint;
  /// Extra rounds of per-link send log retained beyond the checkpoint
  /// distance, absorbing the <= 1 round of virtual-round skew between
  /// neighbors plus the request/response handshake.
  std::size_t log_margin = 4;
};

}  // namespace qcongest::recover
