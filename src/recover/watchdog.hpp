#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/net/engine.hpp"
#include "src/net/graph.hpp"

namespace qcongest::recover {

/// The watchdog concluded the run is no longer making progress. Like
/// net::CongestViolation, the error carries full provenance — which liveness
/// rule tripped, at which round, and which nodes are suspected dead — so
/// callers diagnose the hang structurally instead of parsing a message.
class LivelockError : public std::runtime_error {
 public:
  enum class Kind {
    /// Rounds keep burning with sends (retransmissions, polls) but nothing
    /// has been delivered for stall_rounds — the signature of a retransmit
    /// storm aimed at a dead node.
    kRetransmitStorm,
    /// Rounds keep burning with neither sends nor deliveries — nodes are
    /// spinning on keep_alive (or the engine idles toward a restart that
    /// cannot help) without ever terminating.
    kQuiescentSpin,
    /// The absolute round deadline was exceeded.
    kDeadlineExceeded,
  };

  LivelockError(Kind kind, std::size_t round, std::vector<net::NodeId> suspects)
      : std::runtime_error(describe(kind, round, suspects)),
        kind_(kind),
        round_(round),
        suspects_(std::move(suspects)) {}

  Kind kind() const { return kind_; }
  /// Round at which the watchdog gave up.
  std::size_t round() const { return round_; }
  /// Nodes that swallowed words while crashed since the last delivery,
  /// ascending — the likely-dead peers the network is still talking to.
  const std::vector<net::NodeId>& suspects() const { return suspects_; }

  static std::string describe(Kind kind, std::size_t round,
                              const std::vector<net::NodeId>& suspects);

 private:
  Kind kind_;
  std::size_t round_;
  std::vector<net::NodeId> suspects_;
};

/// A structured recovery diagnosis, the non-throwing sibling of
/// LivelockError for subsystems that must keep going after noticing damage
/// (the job journal's replay scan, checkpoint loaders). Like the livelock
/// path it carries provenance as fields — which subsystem, which invariant,
/// which object — so callers log or count structurally instead of parsing
/// prose; to_string renders the one-line form that ends up on stderr.
struct Diagnosis {
  /// Subsystem that noticed the damage, e.g. "journal".
  std::string subsystem;
  /// Invariant that failed, a stable lowercase token, e.g. "orphan_record",
  /// "invalid_spec", "corrupt_segment".
  std::string kind;
  /// The damaged object: a journal key, a segment file name, a node id.
  std::string subject;
  /// Free-form human detail (never parsed).
  std::string detail;

  std::string to_string() const;
};

/// Liveness thresholds, all in rounds (never wall clock — the watchdog must
/// stay seed-deterministic and thread-count independent). Zero disables a
/// check. stall_rounds must comfortably exceed any legitimate outage: the
/// longest crash window the fault plan schedules, plus the reliable
/// transport's retransmission backoff cap (ReliableParams::rto_cap).
struct WatchdogConfig {
  /// Rounds a node may continuously swallow words while crashed (without a
  /// single successful delivery to it) before the run is declared
  /// livelocked; also the bound on rounds with no traffic at all.
  std::size_t stall_rounds = 1024;
  /// Absolute cap on the run's rounds (0 = no deadline).
  std::size_t deadline_rounds = 0;
};

/// Run-level liveness monitor on the engine observer hook. A permanently
/// crashed neighbor (CrashEvent::kNeverRestarts) under the reliable
/// transport otherwise livelocks a run — peers poll and retransmit into the
/// void until the stretched round budget finally expires, reporting only a
/// bland incomplete run. The watchdog instead converts the hang into a
/// LivelockError naming the suspected-dead nodes.
///
/// Detection is per suspect, not per run: a node enters the suspect set
/// when it swallows a word while crashed and leaves it on the next
/// successful delivery to it (a restart heals it); a suspect that stays in
/// the set for stall_rounds trips kRetransmitStorm. A run-wide no-delivery
/// clock would be fooled by the secondary traffic a dead node provokes —
/// distant nodes keep polling the dead node's stalled-but-live neighbors,
/// and those polls deliver fine, forever.
///
/// Chains like RoundProfiler: set_downstream forwards every callback, so
/// NetOptions can stack metrics -> watchdog -> verifier on the engine's
/// single observer slot. All state is derived from callback order alone.
class Watchdog : public net::EngineObserver {
 public:
  Watchdog() = default;
  explicit Watchdog(WatchdogConfig config) : config_(config) {}

  void set_config(WatchdogConfig config) { config_ = config; }
  const WatchdogConfig& config() const { return config_; }

  /// Forward every callback to `downstream` (nullptr detaches). The
  /// downstream observer must outlive every subsequent run.
  void set_downstream(net::EngineObserver* downstream) { downstream_ = downstream; }

  void on_run_begin(const net::Engine& engine) override;
  void on_send(std::size_t round, net::NodeId from, net::NodeId to,
               const net::Word& word, std::size_t edge_words) override;
  void on_delivery(std::size_t round, net::NodeId from, net::NodeId to,
                   net::DeliveryFate fate, bool corrupted, bool duplicated) override;
  void on_retransmission(std::size_t round) override;
  /// Throws LivelockError when a liveness rule trips (after forwarding the
  /// callback downstream, so chained observers see a consistent prefix).
  void on_round_end(std::size_t round) override;
  void on_run_end(const net::RunResult& stats) override;

 private:
  WatchdogConfig config_;
  net::EngineObserver* downstream_ = nullptr;

  // Per-run state, reset in on_run_begin.
  std::size_t last_traffic_round_ = 0;
  /// Crashed receivers still swallowing words, ascending without
  /// duplicates, each with the round it entered the set.
  std::vector<std::pair<net::NodeId, std::size_t>> suspects_;

  std::vector<net::NodeId> suspect_nodes() const;
};

}  // namespace qcongest::recover
