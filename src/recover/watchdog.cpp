#include "src/recover/watchdog.hpp"

#include <algorithm>

namespace qcongest::recover {

std::string LivelockError::describe(Kind kind, std::size_t round,
                                    const std::vector<net::NodeId>& suspects) {
  std::string what;
  switch (kind) {
    case Kind::kRetransmitStorm:
      what = "livelock: retransmit storm (sends but no deliveries)";
      break;
    case Kind::kQuiescentSpin:
      what = "livelock: quiescence without termination";
      break;
    case Kind::kDeadlineExceeded:
      what = "livelock: round deadline exceeded";
      break;
  }
  what += " at round ";
  what += std::to_string(round);
  if (suspects.empty()) {
    what += ", no suspected-dead nodes";
  } else {
    what += ", suspected dead:";
    for (net::NodeId v : suspects) {
      what += ' ';
      what += std::to_string(v);
    }
  }
  return what;
}

std::string Diagnosis::to_string() const {
  std::string out = subsystem;
  out += ' ';
  out += kind;
  if (!subject.empty()) {
    out += " [";
    out += subject;
    out += ']';
  }
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

void Watchdog::on_run_begin(const net::Engine& engine) {
  last_traffic_round_ = 0;
  suspects_.clear();
  if (downstream_ != nullptr) downstream_->on_run_begin(engine);
}

void Watchdog::on_send(std::size_t round, net::NodeId from, net::NodeId to,
                       const net::Word& word, std::size_t edge_words) {
  last_traffic_round_ = round;
  if (downstream_ != nullptr) downstream_->on_send(round, from, to, word, edge_words);
}

void Watchdog::on_delivery(std::size_t round, net::NodeId from, net::NodeId to,
                           net::DeliveryFate fate, bool corrupted, bool duplicated) {
  last_traffic_round_ = round;
  auto it = std::lower_bound(
      suspects_.begin(), suspects_.end(), to,
      [](const auto& entry, net::NodeId node) { return entry.first < node; });
  if (fate == net::DeliveryFate::kDelivered) {
    // A word got through: the receiver is alive (restarted); absolve it.
    if (it != suspects_.end() && it->first == to) suspects_.erase(it);
  } else if (fate == net::DeliveryFate::kDroppedCrashed) {
    if (it == suspects_.end() || it->first != to) {
      suspects_.insert(it, {to, round});
    }
  }
  if (downstream_ != nullptr) {
    downstream_->on_delivery(round, from, to, fate, corrupted, duplicated);
  }
}

void Watchdog::on_retransmission(std::size_t round) {
  if (downstream_ != nullptr) downstream_->on_retransmission(round);
}

std::vector<net::NodeId> Watchdog::suspect_nodes() const {
  std::vector<net::NodeId> nodes;
  nodes.reserve(suspects_.size());
  for (const auto& [node, since] : suspects_) nodes.push_back(node);
  return nodes;
}

void Watchdog::on_round_end(std::size_t round) {
  if (downstream_ != nullptr) downstream_->on_round_end(round);
  if (config_.deadline_rounds > 0 && round + 1 >= config_.deadline_rounds) {
    throw LivelockError(LivelockError::Kind::kDeadlineExceeded, round,
                        suspect_nodes());
  }
  if (config_.stall_rounds == 0) return;
  // A suspect that has been swallowing words for stall_rounds without one
  // successful delivery is dead for good; everything still addressed to it
  // is a retransmit storm.
  for (const auto& [node, since] : suspects_) {
    if (round >= since && round - since >= config_.stall_rounds) {
      throw LivelockError(LivelockError::Kind::kRetransmitStorm, round,
                          suspect_nodes());
    }
  }
  // No traffic at all (no sends, no deliveries) for stall_rounds: the run
  // is spinning on keep_alive (or idling toward a restart that is further
  // away than any configured outage should be).
  if (round >= last_traffic_round_ &&
      round - last_traffic_round_ >= config_.stall_rounds) {
    throw LivelockError(LivelockError::Kind::kQuiescentSpin, round, suspect_nodes());
  }
}

void Watchdog::on_run_end(const net::RunResult& stats) {
  if (downstream_ != nullptr) downstream_->on_run_end(stats);
}

}  // namespace qcongest::recover
