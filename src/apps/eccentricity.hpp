#pragma once

#include "src/apps/net_options.hpp"
#include "src/net/graph.hpp"
#include "src/util/rng.hpp"
#include "src/net/engine.hpp"

namespace qcongest::apps {

struct EccentricityResult {
  std::size_t value = 0;       // the computed diameter or radius
  std::size_t witness = 0;     // a node attaining it
  net::RunResult cost;
  std::size_t batches = 0;
};

/// Lemma 21: diameter (max eccentricity) in O(sqrt(n D)) measured rounds —
/// parallel maximum finding with p = D over the Corollary 9 oracle whose
/// on-the-fly subroutine is a p-source BFS (Lemma 20, O(p + D) rounds); the
/// framework's max-convergecast itself assembles each queried node's
/// eccentricity. Success probability >= 2/3.
EccentricityResult diameter_quantum(const net::Graph& graph, util::Rng& rng,
                                    const NetOptions& options = {});

/// Lemma 21, minimum variant: the radius.
EccentricityResult radius_quantum(const net::Graph& graph, util::Rng& rng,
                                  const NetOptions& options = {});

/// The paper's literal phrasing of the Lemma 21 subroutine: "we will query
/// the eccentricity of a node; to compute this eccentricity we first
/// compute BFS from the node". This variant runs the full Lemma 20 (BFS +
/// per-source echo, net::multi_source_eccentricities) so each queried node
/// *knows* its eccentricity and contributes it directly; the default
/// diameter_quantum instead lets the framework's max-convergecast assemble
/// the eccentricities from raw distances. Same asymptotics — an
/// implementation-strategy ablation.
EccentricityResult diameter_quantum_echo(const net::Graph& graph, util::Rng& rng);

/// Classical baseline: full n-source BFS (O(n + D) rounds) plus a
/// max/min-convergecast; exact.
EccentricityResult diameter_classical(const net::Graph& graph,
                                      const NetOptions& options = {});
EccentricityResult radius_classical(const net::Graph& graph,
                                    const NetOptions& options = {});

/// Success boosted to >= 1 - delta by combining O(log 1/delta) independent
/// runs (the paper's standard remark). One-sidedness makes the combination
/// sound: every run returns a *genuine* eccentricity, so the maximum over
/// runs approaches the diameter from below (resp. the minimum approaches
/// the radius from above) and never overshoots.
EccentricityResult diameter_quantum_boosted(const net::Graph& graph, double delta,
                                            util::Rng& rng);
EccentricityResult radius_quantum_boosted(const net::Graph& graph, double delta,
                                          util::Rng& rng);

struct AverageEccentricityResult {
  double estimate = 0.0;
  net::RunResult cost;
  std::size_t batches = 0;
};

/// Lemma 22: an epsilon-additive estimate of the average eccentricity in
/// O~(D^{3/2} / epsilon) measured rounds — mean estimation (Lemma 6) with
/// p = D and sigma <= D, each batch sampling D random nodes' eccentricities
/// via multi-source BFS + max-convergecast. Success probability >= 2/3.
AverageEccentricityResult average_eccentricity_quantum(const net::Graph& graph,
                                                       double epsilon, util::Rng& rng);

/// Classical baseline: exact average eccentricity via full APSP
/// (Theta(n + D) measured rounds) — the comparison point for Lemma 22's
/// D^{3/2}/eps advantage on low-diameter graphs.
AverageEccentricityResult average_eccentricity_classical(const net::Graph& graph);

}  // namespace qcongest::apps
