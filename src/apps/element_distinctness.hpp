#pragma once

#include <optional>
#include <vector>

#include "src/net/engine.hpp"
#include "src/net/graph.hpp"
#include "src/query/element_distinctness.hpp"
#include "src/util/rng.hpp"

namespace qcongest::apps {

struct DistinctnessResult {
  std::optional<query::CollisionPair> collision;
  net::RunResult cost;
  std::size_t batches = 0;
};

/// Lemma 12: element distinctness in a distributed vector. Each node v
/// holds x^{(v)} in [N]^k; decide whether x = sum_v x^{(v)} contains a
/// duplicate (and return one). Quantum walk of Lemma 5 with p = D over the
/// Theorem 8 oracle:
/// O((k^{2/3} D^{1/3} + D)(ceil(log N / log n) + ceil(log k / log n)))
/// measured rounds, success >= 2/3 (one-sided: never a false collision).
DistinctnessResult element_distinctness_vector_quantum(
    const net::Graph& graph, const std::vector<std::vector<query::Value>>& data,
    std::int64_t value_range, util::Rng& rng);

/// Classical baseline: gather the aggregated vector at the leader
/// (Theta(D + k ceil(log N / log n)) measured rounds), answer exactly.
DistinctnessResult element_distinctness_vector_classical(
    const net::Graph& graph, const std::vector<std::vector<query::Value>>& data,
    std::int64_t value_range);

/// Corollary 14: element distinctness between nodes — node v holds a single
/// value in [N]; decide whether any two nodes hold the same value. Reduces
/// to Lemma 12 with k = n and x_j^{(v)} = value_v * [j == v]:
/// O((n^{2/3} D^{1/3} + D) ceil(log N / log n)) measured rounds.
DistinctnessResult element_distinctness_nodes_quantum(const net::Graph& graph,
                                                      const std::vector<query::Value>& values,
                                                      std::int64_t value_range,
                                                      util::Rng& rng);

/// Classical baseline for the between-nodes variant: gather everything.
DistinctnessResult element_distinctness_nodes_classical(
    const net::Graph& graph, const std::vector<query::Value>& values,
    std::int64_t value_range);

}  // namespace qcongest::apps
