#pragma once

#include <vector>

#include "src/apps/meeting_scheduling.hpp"
#include "src/net/graph.hpp"
#include "src/util/rng.hpp"

namespace qcongest::apps {

/// Reduction-instance generators for the two-party lower bounds (Lemmas 11,
/// 13, 15 and Theorem 18). Lower bounds cannot be executed; the benches run
/// the best classical protocols on these gadget instances to exhibit the
/// Omega(k / log n) and Omega(n / log n) scaling the reductions prove.

/// A two-party disjointness instance: x, y in {0,1}^k with intersection
/// controlled by `intersect`.
struct DisjointnessInstance {
  std::vector<query::Value> x;
  std::vector<query::Value> y;
  bool intersects = false;
};
DisjointnessInstance random_disjointness(std::size_t k, bool intersect, util::Rng& rng);

/// Lemma 11's gadget: a path of length `distance` whose endpoints hold the
/// two disjointness strings as calendars (all other nodes all-zero). Meeting
/// scheduling answers 2 iff the sets intersect.
struct MeetingGadget {
  net::Graph graph;
  Calendars calendars;
  bool intersects = false;
};
MeetingGadget meeting_scheduling_gadget(std::size_t k, std::size_t distance,
                                        bool intersect, util::Rng& rng);

/// Lemma 13's gadget: endpoints hold the element-distinctness encoding of a
/// disjointness instance (x has a duplicate iff the sets intersect).
struct DistinctnessGadget {
  net::Graph graph;
  std::vector<std::vector<query::Value>> data;
  std::int64_t value_range = 0;
  bool collides = false;
};
DistinctnessGadget distinctness_vector_gadget(std::size_t k, std::size_t distance,
                                              bool intersect, util::Rng& rng);

/// Lemma 15's gadget: two stars joined by an edge-path; the star leaves hold
/// the sets' elements as node values (a duplicate across the stars iff the
/// sets intersect).
struct NodeDistinctnessGadget {
  net::Graph graph;
  std::vector<query::Value> values;
  std::int64_t value_range = 0;
  bool collides = false;
};
NodeDistinctnessGadget distinctness_nodes_gadget(std::size_t set_size, bool intersect,
                                                 util::Rng& rng);

/// Theorem 18's gadget: a path with a Deutsch–Jozsa instance split across
/// its endpoints (x constant or balanced under XOR).
struct DjGadget {
  net::Graph graph;
  std::vector<std::vector<query::Value>> data;
  bool balanced = false;
};
DjGadget deutsch_jozsa_gadget(std::size_t k, std::size_t distance, bool balanced,
                              util::Rng& rng);

/// The Alice/Bob bipartition of a path gadget: nodes up to (and including)
/// position `alice_last` are Alice's; the rest Bob's. Feed it to
/// NetOptions::tracked_cut to measure the induced two-party communication —
/// the quantity the reductions of Lemmas 11/13 and Theorem 18 lower-bound
/// (Omega(k) bits classically for disjointness / exact Deutsch–Jozsa).
std::vector<bool> path_gadget_cut(std::size_t num_nodes, std::size_t alice_last);

}  // namespace qcongest::apps
