#pragma once

#include <vector>

#include "src/apps/net_options.hpp"
#include "src/net/engine.hpp"
#include "src/net/graph.hpp"
#include "src/query/deutsch_jozsa.hpp"
#include "src/util/rng.hpp"

namespace qcongest::apps {

struct DjResult {
  query::DjVerdict verdict = query::DjVerdict::kConstant;
  net::RunResult cost;
  std::size_t batches = 0;
};

/// Problem 16 / Theorem 17: distributed Deutsch–Jozsa. Each node holds
/// x^{(v)} in {0,1}^k; with x = XOR_v x^{(v)} promised constant or balanced,
/// decide which — with probability 1 — in O(D ceil(log k / log n)) measured
/// rounds: a single superposed query through the Theorem 8 oracle with
/// oplus = XOR.
DjResult deutsch_jozsa_quantum(const net::Graph& graph,
                               const std::vector<std::vector<query::Value>>& data,
                               const NetOptions& options = {});

/// Exact classical baseline (Theorem 18's matching upper bound): any
/// zero-error classical protocol must see k/2 + 1 positions of x in the
/// worst case; this one gathers them at the leader through the tree —
/// Theta(D + k) measured rounds, always correct.
DjResult deutsch_jozsa_classical_exact(const net::Graph& graph,
                                       const std::vector<std::vector<query::Value>>& data,
                                       const NetOptions& options = {});

/// Bounded-error classical protocol (the paper's closing remark of Section
/// 4.3): sample a constant number of random positions; O(D) measured rounds,
/// error probability <= 2^-samples on balanced inputs.
DjResult deutsch_jozsa_classical_sampling(const net::Graph& graph,
                                          const std::vector<std::vector<query::Value>>& data,
                                          std::size_t samples, util::Rng& rng);

}  // namespace qcongest::apps
