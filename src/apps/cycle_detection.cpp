#include "src/apps/cycle_detection.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "src/framework/distributed_oracle.hpp"
#include "src/net/bfs.hpp"
#include "src/net/clustering.hpp"
#include "src/net/pipeline.hpp"
#include "src/query/parallel_minfind.hpp"
#include "src/util/combinatorics.hpp"

namespace qcongest::apps {

namespace {

constexpr std::int32_t kTagCycleToken = 30;

/// Truncated BFS-meeting program. Tokens (source, dist) flood from each
/// source through active nodes; a node that already holds a record for a
/// source and receives a second token via a different tree branch witnesses
/// a closed walk of length dist_old + dist_new and records it as a cycle
/// candidate (every candidate contains a genuine cycle of at most its
/// length, and the minimum over all sources of all candidates is exactly
/// the girth — the [PRT12]-style analysis used by [CFGGLO20]).
class CycleBfsProgram final : public net::NodeProgram {
 public:
  CycleBfsProgram(const std::vector<net::NodeId>* sources,
                  const std::vector<bool>* active, std::size_t depth_limit)
      : sources_(sources), active_(active), depth_limit_(depth_limit) {}

  std::int64_t candidate() const { return candidate_; }

  void on_round(net::Context& ctx, std::span<const net::Message> inbox) override {
    if (!(*active_)[ctx.id()]) return;
    if (ctx.round() == 0) {
      outbox_.resize(ctx.neighbors().size());
      for (std::size_t i = 0; i < sources_->size(); ++i) {
        if ((*sources_)[i] == ctx.id()) accept(ctx, i, 0, net::kUnreachable);
      }
    }
    for (const net::Message& m : inbox) {
      if (m.word.tag != kTagCycleToken) continue;
      accept(ctx, static_cast<std::size_t>(m.word.a),
             static_cast<std::size_t>(m.word.b), m.from);
    }
    for (std::size_t ni = 0; ni < ctx.neighbors().size(); ++ni) {
      auto& queue = outbox_[ni];
      for (std::size_t budget = ctx.bandwidth(); budget > 0 && !queue.empty();
           --budget) {
        auto it = queue.begin();
        auto [d, src] = it->first;
        queue.erase(it);
        ctx.send(ctx.neighbors()[ni],
                 net::Word{kTagCycleToken, static_cast<std::int64_t>(src),
                           static_cast<std::int64_t>(d + 1), false});
      }
    }
  }

 private:
  void accept(net::Context& ctx, std::size_t src, std::size_t d, net::NodeId from) {
    auto it = seen_.find(src);
    if (it != seen_.end()) {
      // Second token for this source: a meeting. Ignore echoes from the
      // neighbor we first heard this source from (the "parent" edge).
      if (from != first_from_[src]) {
        candidate_ = std::min(candidate_,
                              static_cast<std::int64_t>(it->second + d));
      }
      return;
    }
    seen_.emplace(src, d);
    first_from_[src] = from;
    if (d >= depth_limit_) return;
    for (std::size_t ni = 0; ni < ctx.neighbors().size(); ++ni) {
      net::NodeId u = ctx.neighbors()[ni];
      if (u == from) continue;              // never echo straight back
      if (!(*active_)[u]) continue;         // restricted subgraph G'
      outbox_[ni].emplace(std::pair{d, src}, 0);
    }
  }

  const std::vector<net::NodeId>* sources_;
  const std::vector<bool>* active_;
  std::size_t depth_limit_;
  std::unordered_map<std::size_t, std::size_t> seen_;        // source -> dist
  std::unordered_map<std::size_t, net::NodeId> first_from_;  // source -> sender
  std::int64_t candidate_ = kNoCycle;
  std::vector<std::map<std::pair<std::size_t, std::size_t>, int>> outbox_;
};

constexpr std::int32_t kTagPerSource = 31;
constexpr std::int64_t kDistPack = 1 << 20;  // b packs branch * kDistPack + dist

/// Token pass for per_source_cycle_candidates (see header). Tokens carry
/// (slot, branch, dist); a node forwards only the first token per slot and
/// records meetings as cycle candidates:
///   same branch, different sender:  d + d'          (cycle through branch)
///   different branches (stage 2):   d + d' + 2      (cycle through s)
class PerSourceCycleProgram final : public net::NodeProgram {
 public:
  PerSourceCycleProgram(const std::vector<net::NodeId>* queries, std::size_t k,
                        bool stage2)
      : queries_(queries), depth_limit_(util::ceil_div(k, 2)), k_(k),
        stage2_(stage2) {}

  const std::vector<std::int64_t>& candidates() const { return candidate_; }

  void on_round(net::Context& ctx, std::span<const net::Message> inbox) override {
    if (ctx.round() == 0) {
      candidate_.assign(queries_->size(), kNoCycle);
      first_.assign(queries_->size(), Record{});
      outbox_.resize(ctx.neighbors().size());
      for (std::size_t slot = 0; slot < queries_->size(); ++slot) {
        net::NodeId s = (*queries_)[slot];
        if (!stage2_ && s == ctx.id()) {
          accept(ctx, slot, ctx.id(), 0, net::kUnreachable);
        }
        if (stage2_ && s != ctx.id()) {
          // Neighbors of s seed their own branch on G \ {s}.
          const auto& adj = ctx.neighbors();
          if (std::find(adj.begin(), adj.end(), s) != adj.end()) {
            accept(ctx, slot, ctx.id(), 0, net::kUnreachable);
          }
        }
      }
    }
    for (const net::Message& m : inbox) {
      if (m.word.tag != kTagPerSource) continue;
      auto slot = static_cast<std::size_t>(m.word.a);
      auto branch = static_cast<net::NodeId>(m.word.b / kDistPack);
      auto dist = static_cast<std::size_t>(m.word.b % kDistPack);
      accept(ctx, slot, branch, dist, m.from);
    }
    for (std::size_t ni = 0; ni < outbox_.size(); ++ni) {
      auto& queue = outbox_[ni];
      for (std::size_t budget = ctx.bandwidth(); budget > 0 && !queue.empty();
           --budget) {
        auto it = queue.begin();
        ctx.send(ctx.neighbors()[ni], it->second);
        queue.erase(it);
      }
    }
  }

 private:
  struct Record {
    bool seen = false;
    net::NodeId branch = 0;
    std::size_t dist = 0;
    net::NodeId from = net::kUnreachable;
  };

  void accept(net::Context& ctx, std::size_t slot, net::NodeId branch,
              std::size_t dist, net::NodeId from) {
    net::NodeId s = (*queries_)[slot];
    if (stage2_ && ctx.id() == s) return;  // s is removed from the graph
    Record& rec = first_[slot];
    if (rec.seen) {
      if (from == rec.from) return;  // parent echo, not a meeting
      std::size_t length = rec.dist + dist + (branch == rec.branch ? 0 : 2);
      if (length >= 3 && length <= k_) {
        candidate_[slot] =
            std::min(candidate_[slot], static_cast<std::int64_t>(length));
      }
      return;
    }
    rec = Record{true, branch, dist, from};
    if (dist >= depth_limit_) return;
    for (std::size_t ni = 0; ni < ctx.neighbors().size(); ++ni) {
      net::NodeId u = ctx.neighbors()[ni];
      if (u == from) continue;
      if (stage2_ && u == s) continue;
      outbox_[ni].emplace(
          std::tuple{dist, slot},
          net::Word{kTagPerSource, static_cast<std::int64_t>(slot),
                    static_cast<std::int64_t>(branch) * kDistPack +
                        static_cast<std::int64_t>(dist + 1),
                    false});
    }
  }

  const std::vector<net::NodeId>* queries_;
  std::size_t depth_limit_;
  std::size_t k_;
  bool stage2_;
  std::vector<std::int64_t> candidate_;
  std::vector<Record> first_;
  // Per-neighbor priority queue keyed by (dist, slot): smaller hops first.
  std::vector<std::map<std::tuple<std::size_t, std::size_t>, net::Word>> outbox_;
};

std::optional<std::size_t> to_length(std::int64_t candidate, std::size_t k) {
  if (candidate >= kNoCycle || candidate > static_cast<std::int64_t>(k)) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(candidate);
}

}  // namespace

PerSourceCandidates per_source_cycle_candidates(net::Engine& engine,
                                                const std::vector<net::NodeId>& queries,
                                                std::size_t k, bool stage2) {
  const std::size_t n = engine.graph().num_nodes();
  if (queries.empty()) throw std::invalid_argument("per_source: no queries");
  for (net::NodeId s : queries) {
    if (s >= n) throw std::invalid_argument("per_source: query out of range");
  }
  std::vector<std::unique_ptr<net::NodeProgram>> programs;
  programs.reserve(n);
  for (net::NodeId v = 0; v < n; ++v) {
    programs.push_back(std::make_unique<PerSourceCycleProgram>(&queries, k, stage2));
  }
  PerSourceCandidates result;
  std::size_t limit = 8 * (queries.size() * (k + 2) + n) + 64;
  result.cost = engine.run(programs, limit);
  if (!result.cost.completed) throw std::logic_error("per_source: did not finish");
  result.candidate.reserve(n);
  for (net::NodeId v = 0; v < n; ++v) {
    result.candidate.push_back(
        static_cast<PerSourceCycleProgram&>(*programs[v]).candidates());
  }
  return result;
}

CycleBfsResult cycle_bfs(net::Engine& engine, const std::vector<net::NodeId>& sources,
                         const std::vector<bool>& active, std::size_t depth_limit) {
  const std::size_t n = engine.graph().num_nodes();
  if (active.size() != n) throw std::invalid_argument("cycle_bfs: active size");
  std::vector<std::unique_ptr<net::NodeProgram>> programs;
  programs.reserve(n);
  for (net::NodeId v = 0; v < n; ++v) {
    programs.push_back(
        std::make_unique<CycleBfsProgram>(&sources, &active, depth_limit));
  }
  CycleBfsResult result;
  // Token volume per edge is bounded by the number of sources; generous cap.
  std::size_t limit = 8 * (sources.size() * depth_limit + n) + 64;
  result.cost = engine.run(programs, limit);
  if (!result.cost.completed) throw std::logic_error("cycle_bfs: did not finish");
  result.candidate.reserve(n);
  for (net::NodeId v = 0; v < n; ++v) {
    result.candidate.push_back(static_cast<CycleBfsProgram&>(*programs[v]).candidate());
  }
  return result;
}

CycleSearchResult light_cycle_detection(const net::Graph& graph, std::size_t k,
                                        std::size_t degree_threshold) {
  if (k < 3) throw std::invalid_argument("light_cycle_detection: k < 3");
  const std::size_t n = graph.num_nodes();
  net::Engine engine(graph, 1, 7);
  CycleSearchResult result;

  std::vector<bool> active(n);
  std::vector<net::NodeId> sources;
  for (net::NodeId v = 0; v < n; ++v) {
    active[v] = graph.degree(v) <= degree_threshold;
    if (active[v]) sources.push_back(v);
  }
  if (!sources.empty()) {
    auto bfs = cycle_bfs(engine, sources, active, util::ceil_div(k, 2));
    result.cost += bfs.cost;

    // Deliver the minimum candidate to the leader classically.
    auto election = net::elect_leader(engine);
    result.cost += election.cost;
    net::BfsTree tree = net::build_bfs_tree(engine, election.leader);
    result.cost += tree.cost;
    std::vector<std::vector<std::int64_t>> values(n);
    for (net::NodeId v = 0; v < n; ++v) values[v] = {bfs.candidate[v]};
    auto conv = net::pipelined_convergecast(
        engine, tree, values, 1,
        [](std::int64_t a, std::int64_t b) { return std::min(a, b); }, false);
    result.cost += conv.cost;
    result.cycle_length = to_length(conv.totals[0], k);
  }
  return result;
}

double cycle_beta(std::size_t n, std::size_t diameter, std::size_t k) {
  double log_n = std::log(static_cast<double>(std::max<std::size_t>(n, 2)));
  double log_d = std::log(static_cast<double>(std::max<std::size_t>(diameter, 1)));
  return (1.0 + log_d / log_n) /
         (1.0 + 2.0 * static_cast<double>(util::ceil_div(k, 2)));
}

namespace {

/// Heavy-cycle stage: parallel minimum finding (Lemma 3, exploiting the
/// >= n^beta-fold degenerate minimum) over the vertex values
/// "smallest cycle of length <= k through s or a neighbor of s".
///
/// Substitution (DESIGN.md): the per-batch communication is the two BFS
/// stages of [CFGGLO20] — modeled by two truncated multi-source BFS-meeting
/// passes from the batch's vertices, measured; the stage-2 (neighbors on
/// G \ {s}) numeric values come from ground truth, which the paper's
/// procedure provably computes.
CycleSearchResult heavy_cycle_detection(const net::Graph& graph, std::size_t k,
                                        util::Rng& rng) {
  const std::size_t n = graph.num_nodes();
  net::Engine engine(graph, 1, rng.engine()());
  CycleSearchResult result;

  auto election = net::elect_leader(engine);
  result.cost += election.cost;
  net::BfsTree tree = net::build_bfs_tree(engine, election.leader);
  result.cost += tree.cost;

  // Per-vertex values following the two-stage procedure of [CFGGLO20] /
  // Lemma 23, computed by the centralized replica (substitution note
  // above): stage 1 is a BFS-meeting search from s; stage 2 (with kappa set
  // to stage 1's result) searches from each neighbor of s on G \ {s}.
  std::vector<std::int64_t> value(n, kNoCycle);
  for (net::NodeId s = 0; s < n; ++s) {
    auto stage1 = graph.shortest_cycle_through(s, k);
    std::size_t kappa = stage1 ? *stage1 : k;
    std::int64_t best = stage1 ? static_cast<std::int64_t>(*stage1) : kNoCycle;
    for (net::NodeId u : graph.neighbors(s)) {
      if (auto stage2 = graph.shortest_cycle_through(u, kappa, s)) {
        best = std::min(best, static_cast<std::int64_t>(*stage2));
      }
    }
    value[s] = best;
  }

  framework::OracleConfig config;
  config.domain_size = n;
  config.parallelism = std::max<std::size_t>(1, tree.height + k);  // p = D + k
  config.value_bits = 21;  // candidates fit below kNoCycle = 2^20
  config.combine = [](std::int64_t a, std::int64_t b) { return std::min(a, b); };
  config.identity = kNoCycle;

  framework::DistributedOracle::BatchComputer computer =
      [&engine, &value, n, k](std::span<const std::size_t> indices) {
        framework::DistributedOracle::BatchValues out;
        std::vector<net::NodeId> queries(indices.begin(), indices.end());
        // Stage 1 (BFS from each queried vertex) and stage 2 (BFSs from its
        // neighbors on G minus the vertex), run as honest per-query token
        // passes; the per-vertex numeric values the oracle aggregates come
        // from the centralized replica so that peek and fetch agree
        // deterministically (the token passes' own candidates are validated
        // against the replica in the tests).
        out.cost += per_source_cycle_candidates(engine, queries, k, false).cost;
        out.cost += per_source_cycle_candidates(engine, queries, k, true).cost;
        out.per_node.assign(n, std::vector<query::Value>(indices.size(), kNoCycle));
        for (std::size_t slot = 0; slot < indices.size(); ++slot) {
          std::size_t s = indices[slot];
          out.per_node[s][slot] = value[s];
        }
        return out;
      };
  auto truth = [&value](std::size_t s) { return value[s]; };
  framework::DistributedOracle oracle(engine, tree, config, computer, truth);

  std::size_t witness = query::minfind(oracle, rng);
  result.cycle_length = to_length(value[witness], k);
  result.batches = oracle.ledger().batches;
  result.cost += oracle.total_cost();
  return result;
}

}  // namespace

CycleSearchResult cycle_detection_with_beta(const net::Graph& graph, std::size_t k,
                                            double beta, util::Rng& rng) {
  if (k < 3) throw std::invalid_argument("cycle_detection: k < 3");
  const std::size_t n = graph.num_nodes();
  // A cycle, if any exists, has length <= 2D + 1.
  std::size_t diameter_bound = 2 * graph.diameter() + 1;
  k = std::min(k, std::max<std::size_t>(3, diameter_bound));

  auto threshold = static_cast<std::size_t>(
      std::ceil(std::pow(static_cast<double>(n), beta)));

  CycleSearchResult light = light_cycle_detection(graph, k, threshold);
  CycleSearchResult heavy = heavy_cycle_detection(graph, k, rng);

  CycleSearchResult result;
  result.cost += light.cost;
  result.cost += heavy.cost;
  result.batches = heavy.batches;
  if (light.cycle_length && heavy.cycle_length) {
    result.cycle_length = std::min(*light.cycle_length, *heavy.cycle_length);
  } else {
    result.cycle_length = light.cycle_length ? light.cycle_length : heavy.cycle_length;
  }
  return result;
}

CycleSearchResult cycle_detection(const net::Graph& graph, std::size_t k,
                                  util::Rng& rng) {
  double beta = cycle_beta(graph.num_nodes(), graph.diameter(), k);
  return cycle_detection_with_beta(graph, k, beta, rng);
}

CycleSearchResult cycle_detection_clustered(const net::Graph& graph, std::size_t k,
                                            util::Rng& rng) {
  if (k < 3) throw std::invalid_argument("cycle_detection_clustered: k < 3");
  const std::size_t n = graph.num_nodes();

  net::Clustering clustering = net::cluster_graph(graph, 2 * k, rng);
  CycleSearchResult result;
  result.charged_rounds = clustering.charged_rounds;

  // Per color, the clusters' k-neighborhood subgraphs are disjoint (same-
  // color clusters are >= 2k apart), so their runs share rounds: per color
  // we account the maximum over its clusters.
  std::vector<std::size_t> color_rounds(clustering.num_colors, 0);
  std::optional<std::size_t> best;

  for (const auto& cluster : clustering.clusters) {
    // Subgraph: the cluster plus its k-fringe.
    auto dist = graph.bfs_distances(cluster.center);
    std::size_t reach = 0;
    for (net::NodeId u : cluster.members) reach = std::max(reach, dist[u]);
    reach += k;
    std::vector<net::NodeId> nodes;
    std::vector<std::size_t> local_id(n, net::kUnreachable);
    for (net::NodeId v = 0; v < n; ++v) {
      if (dist[v] <= reach) {
        local_id[v] = nodes.size();
        nodes.push_back(v);
      }
    }
    if (nodes.size() < 3) continue;
    net::Graph sub(nodes.size());
    for (net::NodeId v : nodes) {
      for (net::NodeId u : graph.neighbors(v)) {
        if (local_id[u] != net::kUnreachable && local_id[v] < local_id[u]) {
          sub.add_edge(local_id[v], local_id[u]);
        }
      }
    }
    if (!sub.connected()) continue;  // fringe truncation split it; the
                                     // cluster's own ball stays connected

    CycleSearchResult local = cycle_detection(sub, k, rng);
    color_rounds[cluster.color] =
        std::max(color_rounds[cluster.color], local.cost.rounds);
    result.cost.messages += local.cost.messages;
    result.cost.classical_words += local.cost.classical_words;
    result.cost.quantum_words += local.cost.quantum_words;
    result.batches += local.batches;
    if (local.cycle_length && (!best || *local.cycle_length < *best)) {
      best = local.cycle_length;
    }
  }
  for (std::size_t rounds : color_rounds) result.cost.rounds += rounds;
  result.cost.completed = true;
  result.cycle_length = best;
  return result;
}

}  // namespace qcongest::apps
