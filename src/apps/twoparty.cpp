#include "src/apps/twoparty.hpp"

#include <stdexcept>

#include "src/net/generators.hpp"

namespace qcongest::apps {

DisjointnessInstance random_disjointness(std::size_t k, bool intersect, util::Rng& rng) {
  if (k < 2) throw std::invalid_argument("disjointness: k < 2");
  DisjointnessInstance inst;
  inst.x.assign(k, 0);
  inst.y.assign(k, 0);
  // Random sets over disjoint halves of the universe, so they never
  // intersect by accident; then optionally plant one intersection point.
  for (std::size_t i = 0; i < k; ++i) {
    if (i % 2 == 0) {
      inst.x[i] = rng.bernoulli(0.5) ? 1 : 0;
    } else {
      inst.y[i] = rng.bernoulli(0.5) ? 1 : 0;
    }
  }
  if (intersect) {
    std::size_t where = rng.index(k);
    inst.x[where] = 1;
    inst.y[where] = 1;
    inst.intersects = true;
  }
  return inst;
}

MeetingGadget meeting_scheduling_gadget(std::size_t k, std::size_t distance,
                                        bool intersect, util::Rng& rng) {
  if (distance < 1) throw std::invalid_argument("gadget: distance < 1");
  auto inst = random_disjointness(k, intersect, rng);
  MeetingGadget gadget{net::path_graph(distance + 1), {}, inst.intersects};
  gadget.calendars.assign(distance + 1, std::vector<query::Value>(k, 0));
  gadget.calendars.front() = inst.x;
  gadget.calendars.back() = inst.y;
  return gadget;
}

DistinctnessGadget distinctness_vector_gadget(std::size_t k, std::size_t distance,
                                              bool intersect, util::Rng& rng) {
  if (distance < 1) throw std::invalid_argument("gadget: distance < 1");
  auto inst = random_disjointness(k, intersect, rng);
  // Lemma 13's encoding over index range 2k: slot i (i < k) carries A's
  // value, slot k + i carries B's; a sum-collision exists iff some i is in
  // both sets (both encode i + 1 there).
  DistinctnessGadget gadget{net::path_graph(distance + 1), {}, 0, inst.intersects};
  const std::size_t m = 2 * k;
  gadget.data.assign(distance + 1, std::vector<query::Value>(m, 0));
  auto& a = gadget.data.front();
  auto& b = gadget.data.back();
  for (std::size_t i = 0; i < k; ++i) {
    a[i] = inst.x[i] == 1 ? static_cast<query::Value>(i + 1)
                          : static_cast<query::Value>(2 * k + i + 1);
    b[k + i] = inst.y[i] == 1 ? static_cast<query::Value>(i + 1)
                              : static_cast<query::Value>(3 * k + i + 1);
  }
  gadget.value_range = static_cast<std::int64_t>(4 * k + 1);
  return gadget;
}

NodeDistinctnessGadget distinctness_nodes_gadget(std::size_t set_size, bool intersect,
                                                 util::Rng& rng) {
  if (set_size < 2) throw std::invalid_argument("gadget: set_size < 2");
  NodeDistinctnessGadget gadget{net::two_stars_graph(set_size, set_size, 1), {}, 0,
                                intersect};
  const std::size_t n = gadget.graph.num_nodes();
  gadget.values.assign(n, 0);
  // Universe [set_size * 4]: left leaves take even slots, right leaves take
  // odd slots, so cross-star values differ unless planted. Centers get
  // unique out-of-band values.
  std::size_t left_center = set_size;
  std::size_t right_center = set_size + 1;
  gadget.values[left_center] = static_cast<query::Value>(8 * set_size + 1);
  gadget.values[right_center] = static_cast<query::Value>(8 * set_size + 2);
  for (std::size_t i = 0; i < set_size; ++i) {
    gadget.values[i] = static_cast<query::Value>(4 * i);                  // left leaf
    gadget.values[right_center + 1 + i] = static_cast<query::Value>(4 * i + 2);
  }
  if (intersect) {
    std::size_t where = rng.index(set_size);
    gadget.values[right_center + 1 + where] = gadget.values[where];
  }
  gadget.value_range = static_cast<std::int64_t>(8 * set_size + 3);
  return gadget;
}

DjGadget deutsch_jozsa_gadget(std::size_t k, std::size_t distance, bool balanced,
                              util::Rng& rng) {
  if (k < 2 || k % 2 != 0) throw std::invalid_argument("dj gadget: k must be even >= 2");
  if (distance < 1) throw std::invalid_argument("gadget: distance < 1");
  DjGadget gadget{net::path_graph(distance + 1), {}, balanced};
  gadget.data.assign(distance + 1, std::vector<query::Value>(k, 0));
  auto& a = gadget.data.front();
  auto& b = gadget.data.back();
  // Split x = a XOR b randomly: pick a at random, then b = a XOR x.
  std::vector<query::Value> x(k, 0);
  if (balanced) {
    auto positions = rng.sample_without_replacement(k, k / 2);
    for (std::size_t pos : positions) x[pos] = 1;
  } else if (rng.bernoulli(0.5)) {
    x.assign(k, 1);
  }
  for (std::size_t i = 0; i < k; ++i) {
    a[i] = rng.bernoulli(0.5) ? 1 : 0;
    b[i] = a[i] ^ x[i];
  }
  return gadget;
}

std::vector<bool> path_gadget_cut(std::size_t num_nodes, std::size_t alice_last) {
  if (alice_last + 1 >= num_nodes) {
    throw std::invalid_argument("path_gadget_cut: Bob's side would be empty");
  }
  std::vector<bool> side(num_nodes, true);
  for (std::size_t v = 0; v <= alice_last; ++v) side[v] = false;
  return side;
}

}  // namespace qcongest::apps
