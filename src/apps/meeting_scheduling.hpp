#pragma once

#include <vector>

#include "src/apps/net_options.hpp"
#include "src/net/engine.hpp"
#include "src/net/graph.hpp"
#include "src/query/oracle.hpp"
#include "src/util/rng.hpp"

namespace qcongest::apps {

/// Input to the meeting scheduling problem (Section 4.1): calendar[v][i] = 1
/// iff participant v is available in time slot i; k slots, n participants.
using Calendars = std::vector<std::vector<query::Value>>;

struct MeetingSchedulingResult {
  std::size_t best_slot = 0;          // argmax_i sum_v calendar[v][i]
  query::Value availability = 0;      // the attained maximum
  net::RunResult cost;                // measured: election + BFS + batches
  std::size_t batches = 0;            // charged query batches (quantum only)
};

/// Lemma 10: Quantum CONGEST meeting scheduling in
/// O((sqrt(kD) + D) ceil(log k / log n)) measured rounds — parallel maximum
/// finding (Lemma 3) with p = D over the Theorem 8 oracle with oplus = +.
/// Success probability >= 2/3.
MeetingSchedulingResult meeting_scheduling_quantum(const net::Graph& graph,
                                                   const Calendars& calendars,
                                                   util::Rng& rng,
                                                   const NetOptions& options = {});

/// The classical baseline (the paper's remark after Lemma 11): every node
/// streams its whole calendar to the leader through the BFS tree — the
/// trivial (1, k)-parallel-query protocol, Theta(D + k) measured rounds.
/// Always exact.
MeetingSchedulingResult meeting_scheduling_classical(const net::Graph& graph,
                                                     const Calendars& calendars,
                                                     const NetOptions& options = {});

/// Ground truth (no network): for tests and success-rate measurements.
MeetingSchedulingResult meeting_scheduling_reference(const Calendars& calendars);

}  // namespace qcongest::apps
