#include "src/apps/deutsch_jozsa.hpp"

#include <stdexcept>

#include "src/framework/distributed_oracle.hpp"
#include "src/net/bfs.hpp"
#include "src/net/pipeline.hpp"

namespace qcongest::apps {

namespace {

void validate(const net::Graph& graph, const std::vector<std::vector<query::Value>>& data) {
  if (data.size() != graph.num_nodes()) {
    throw std::invalid_argument("deutsch-jozsa: one string per node");
  }
  if (data.empty() || data[0].empty() || data[0].size() % 2 != 0) {
    throw std::invalid_argument("deutsch-jozsa: k must be even and positive");
  }
  for (const auto& row : data) {
    if (row.size() != data[0].size()) {
      throw std::invalid_argument("deutsch-jozsa: string sizes differ");
    }
    for (query::Value v : row) {
      if (v != 0 && v != 1) throw std::invalid_argument("deutsch-jozsa: non-bit input");
    }
  }
}

struct Setup {
  net::Engine engine;
  net::BfsTree tree;
  net::RunResult cost;
};

Setup make_setup(const net::Graph& graph, std::uint64_t seed,
                 const NetOptions& options = {}) {
  Setup s{net::Engine(graph, options.bandwidth, seed ^ options.seed), {}, {}};
  options.configure(s.engine);
  auto election = net::elect_leader(s.engine);
  s.cost += election.cost;
  s.tree = net::build_bfs_tree(s.engine, election.leader);
  s.cost += s.tree.cost;
  return s;
}

}  // namespace

DjResult deutsch_jozsa_quantum(const net::Graph& graph,
                               const std::vector<std::vector<query::Value>>& data,
                               const NetOptions& options) {
  validate(graph, data);
  Setup setup = make_setup(graph, 1, options);
  DjResult result;
  result.cost = setup.cost;

  // Theorem 17: a (1, 1)-parallel-query algorithm with oplus = XOR, q = 1.
  framework::OracleConfig config;
  config.domain_size = data[0].size();
  config.parallelism = 1;
  config.value_bits = 1;
  config.combine = [](std::int64_t a, std::int64_t b) { return a ^ b; };
  config.identity = 0;
  config.profiler = options.metrics;
  framework::DistributedOracle oracle(setup.engine, setup.tree, config, data);

  result.verdict = query::deutsch_jozsa(oracle);
  result.batches = oracle.ledger().batches;
  result.cost += oracle.total_cost();
  return result;
}

DjResult deutsch_jozsa_classical_exact(const net::Graph& graph,
                                       const std::vector<std::vector<query::Value>>& data,
                                       const NetOptions& options) {
  validate(graph, data);
  Setup setup = make_setup(graph, 2, options);
  DjResult result;
  result.cost = setup.cost;
  const std::size_t k = data[0].size();

  // Gather k/2 + 1 positions of x = XOR_v x^{(v)} at the leader; if all are
  // equal the input must be constant (a balanced x cannot agree on k/2 + 1
  // positions).
  const std::size_t needed = k / 2 + 1;
  std::vector<std::vector<std::int64_t>> slices(graph.num_nodes());
  for (std::size_t v = 0; v < graph.num_nodes(); ++v) {
    slices[v].assign(data[v].begin(),
                     data[v].begin() + static_cast<std::ptrdiff_t>(needed));
  }
  auto conv = net::pipelined_convergecast(
      setup.engine, setup.tree, slices, /*value_words=*/1,
      [](std::int64_t a, std::int64_t b) { return a ^ b; }, /*quantum=*/false);
  result.cost += conv.cost;

  bool all_equal = true;
  for (std::int64_t x : conv.totals) {
    if (x != conv.totals[0]) all_equal = false;
  }
  result.verdict = all_equal ? query::DjVerdict::kConstant : query::DjVerdict::kBalanced;
  result.batches = 1;
  return result;
}

DjResult deutsch_jozsa_classical_sampling(const net::Graph& graph,
                                          const std::vector<std::vector<query::Value>>& data,
                                          std::size_t samples, util::Rng& rng) {
  validate(graph, data);
  if (samples == 0) throw std::invalid_argument("deutsch-jozsa: samples == 0");
  Setup setup = make_setup(graph, 3);
  DjResult result;
  result.cost = setup.cost;
  const std::size_t k = data[0].size();

  // The leader broadcasts the sampled positions, the tree XOR-aggregates
  // them: O(D + samples) rounds.
  std::vector<std::size_t> positions;
  for (std::size_t s = 0; s < samples; ++s) positions.push_back(rng.index(k));
  std::vector<std::int64_t> payload(positions.begin(), positions.end());
  result.cost += net::pipelined_downcast(setup.engine, setup.tree, payload,
                                         /*quantum=*/false)
                     .cost;

  std::vector<std::vector<std::int64_t>> picks(graph.num_nodes());
  for (std::size_t v = 0; v < graph.num_nodes(); ++v) {
    for (std::size_t pos : positions) picks[v].push_back(data[v][pos]);
  }
  auto conv = net::pipelined_convergecast(
      setup.engine, setup.tree, picks, 1,
      [](std::int64_t a, std::int64_t b) { return a ^ b; }, /*quantum=*/false);
  result.cost += conv.cost;

  bool all_equal = true;
  for (std::int64_t x : conv.totals) {
    if (x != conv.totals[0]) all_equal = false;
  }
  result.verdict = all_equal ? query::DjVerdict::kConstant : query::DjVerdict::kBalanced;
  result.batches = 1;
  return result;
}

}  // namespace qcongest::apps
