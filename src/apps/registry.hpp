#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/apps/net_options.hpp"
#include "src/net/engine.hpp"
#include "src/net/graph.hpp"

namespace qcongest::apps {

/// Result of one registry app run: did the protocol's answer match ground
/// truth, and what did the run cost. The success bit is computed by the
/// runner itself (each app self-checks against an exact reference), so
/// callers — chaos_run's sweep, the qcongestd service — never need
/// app-specific knowledge to grade an outcome.
struct AppOutcome {
  bool success = false;
  net::RunResult cost;
};

/// One application under test: run it on `graph` with the given options and
/// self-check the answer. Runners are pure functions of (graph, options) —
/// no hidden state — which is what lets the service execute many of them
/// concurrently and still promise byte-identical reports per (job, seed).
using AppRunner = std::function<AppOutcome(const net::Graph&, const NetOptions&)>;

struct RegisteredApp {
  const char* name;
  AppRunner run;
};

/// The named application suite shared by chaos_run and the qcongestd
/// service: leader, bfs, downcast, convergecast, multibfs, diameter,
/// radius, dj, meeting. Order is fixed (it is the sweep's display order).
const std::vector<RegisteredApp>& app_registry();

/// Look up a runner by name; nullptr when unknown.
const AppRunner* find_app(std::string_view name);

/// The registered app names, in registry order.
std::vector<std::string> app_names();

/// Topology factory by family name: tree | path | cycle | grid | random |
/// star | complete. `seed` only matters for the random family. Throws
/// std::invalid_argument on an unknown family or a size the family cannot
/// realize. grid builds the largest side*side grid with side*side <= nodes.
net::Graph make_registry_graph(std::string_view family, std::size_t nodes,
                               std::uint64_t seed);

/// The accepted graph family names.
std::vector<std::string> graph_families();

}  // namespace qcongest::apps
