#include "src/apps/registry.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/apps/deutsch_jozsa.hpp"
#include "src/apps/eccentricity.hpp"
#include "src/apps/meeting_scheduling.hpp"
#include "src/net/bfs.hpp"
#include "src/net/generators.hpp"
#include "src/net/multi_bfs.hpp"
#include "src/net/pipeline.hpp"
#include "src/util/rng.hpp"

namespace qcongest::apps {

namespace {

net::Engine make_engine(const net::Graph& graph, const NetOptions& options) {
  net::Engine engine(graph, options.bandwidth, options.seed);
  options.configure(engine);
  return engine;
}

AppOutcome run_leader(const net::Graph& graph, const NetOptions& options) {
  net::Engine engine = make_engine(graph, options);
  auto election = net::elect_leader(engine);
  return {election.cost.completed && election.leader == graph.num_nodes() - 1,
          election.cost};
}

AppOutcome run_bfs(const net::Graph& graph, const NetOptions& options) {
  net::Engine engine = make_engine(graph, options);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  std::vector<std::size_t> truth = graph.bfs_distances(0);
  AppOutcome out;
  out.cost = tree.cost;
  out.success = tree.cost.completed && tree.depth == truth;
  return out;
}

AppOutcome run_downcast(const net::Graph& graph, const NetOptions& options) {
  net::Engine engine = make_engine(graph, options);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  AppOutcome out;
  out.cost = tree.cost;
  std::vector<std::int64_t> payload(32);
  std::iota(payload.begin(), payload.end(), 100);
  auto down = net::pipelined_downcast(engine, tree, payload, /*quantum=*/false);
  out.cost += down.cost;
  out.success = down.cost.completed;
  for (const auto& row : down.received) {
    if (row != payload) out.success = false;
  }
  return out;
}

AppOutcome run_convergecast(const net::Graph& graph, const NetOptions& options) {
  net::Engine engine = make_engine(graph, options);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  AppOutcome out;
  out.cost = tree.cost;
  const std::size_t n = graph.num_nodes();
  std::vector<std::vector<std::int64_t>> values(n);
  for (std::size_t v = 0; v < n; ++v) values[v] = {static_cast<std::int64_t>(v), 1};
  auto conv = net::pipelined_convergecast(
      engine, tree, values, /*value_words=*/1,
      [](std::int64_t a, std::int64_t b) { return a + b; }, /*quantum=*/false);
  out.cost += conv.cost;
  auto expected = std::vector<std::int64_t>{
      static_cast<std::int64_t>(n * (n - 1) / 2), static_cast<std::int64_t>(n)};
  out.success = conv.cost.completed && conv.totals == expected;
  return out;
}

AppOutcome run_multibfs(const net::Graph& graph, const NetOptions& options) {
  net::Engine engine = make_engine(graph, options);
  const std::size_t n = graph.num_nodes();
  std::vector<net::NodeId> sources;
  for (std::size_t s = 0; s < std::min<std::size_t>(4, n); ++s) sources.push_back(s);
  auto bfs = net::multi_source_bfs(engine, sources, n);
  AppOutcome out;
  out.cost = bfs.cost;
  out.success = bfs.cost.completed;
  for (std::size_t slot = 0; slot < sources.size() && out.success; ++slot) {
    std::vector<std::size_t> truth = graph.bfs_distances(sources[slot]);
    for (std::size_t v = 0; v < n; ++v) {
      if (static_cast<std::size_t>(bfs.dist[v][slot]) != truth[v]) {
        out.success = false;
        break;
      }
    }
  }
  return out;
}

AppOutcome run_diameter(const net::Graph& graph, const NetOptions& options) {
  auto result = diameter_classical(graph, options);
  return {result.cost.completed && result.value == graph.diameter(), result.cost};
}

AppOutcome run_radius(const net::Graph& graph, const NetOptions& options) {
  auto result = radius_classical(graph, options);
  return {result.cost.completed && result.value == graph.radius(), result.cost};
}

AppOutcome run_dj(const net::Graph& graph, const NetOptions& options) {
  const std::size_t n = graph.num_nodes();
  const std::size_t k = 8;
  // Node 0 holds 01010101, everyone else all-zero: x = XOR_v x^{(v)} is
  // balanced, and the exact protocol must say so.
  std::vector<std::vector<query::Value>> data(n, std::vector<query::Value>(k, 0));
  for (std::size_t i = 1; i < k; i += 2) data[0][i] = 1;
  auto result = deutsch_jozsa_classical_exact(graph, data, options);
  return {result.cost.completed && result.verdict == query::DjVerdict::kBalanced,
          result.cost};
}

AppOutcome run_meeting(const net::Graph& graph, const NetOptions& options) {
  const std::size_t n = graph.num_nodes();
  const std::size_t k = 12;
  Calendars calendars(n, std::vector<query::Value>(k, 0));
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < k; ++i) calendars[v][i] = (v + i) % 3 == 0 ? 1 : 0;
  }
  auto truth = meeting_scheduling_reference(calendars);
  auto result = meeting_scheduling_classical(graph, calendars, options);
  return {result.cost.completed && result.best_slot == truth.best_slot &&
              result.availability == truth.availability,
          result.cost};
}

}  // namespace

const std::vector<RegisteredApp>& app_registry() {
  static const std::vector<RegisteredApp> registry = {
      {"leader", run_leader},         {"bfs", run_bfs},
      {"downcast", run_downcast},     {"convergecast", run_convergecast},
      {"multibfs", run_multibfs},     {"diameter", run_diameter},
      {"radius", run_radius},         {"dj", run_dj},
      {"meeting", run_meeting},
  };
  return registry;
}

const AppRunner* find_app(std::string_view name) {
  for (const RegisteredApp& app : app_registry()) {
    if (name == app.name) return &app.run;
  }
  return nullptr;
}

std::vector<std::string> app_names() {
  std::vector<std::string> names;
  names.reserve(app_registry().size());
  for (const RegisteredApp& app : app_registry()) names.emplace_back(app.name);
  return names;
}

net::Graph make_registry_graph(std::string_view family, std::size_t nodes,
                               std::uint64_t seed) {
  if (nodes < 2) {
    throw std::invalid_argument("make_registry_graph: need at least 2 nodes");
  }
  if (family == "tree") return net::binary_tree(nodes);
  if (family == "path") return net::path_graph(nodes);
  if (family == "cycle") return net::cycle_graph(nodes);
  if (family == "star") return net::star_graph(nodes);
  if (family == "complete") return net::complete_graph(nodes);
  if (family == "grid") {
    std::size_t side = 1;
    while ((side + 1) * (side + 1) <= nodes) ++side;
    return net::grid_graph(side, side);
  }
  if (family == "random") {
    util::Rng rng(seed);
    return net::random_connected_graph(nodes, nodes / 2, rng);
  }
  throw std::invalid_argument("make_registry_graph: unknown graph family '" +
                              std::string(family) + "'");
}

std::vector<std::string> graph_families() {
  return {"tree", "path", "cycle", "grid", "random", "star", "complete"};
}

}  // namespace qcongest::apps
