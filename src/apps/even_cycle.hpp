#pragma once

#include <optional>

#include "src/net/engine.hpp"
#include "src/net/graph.hpp"
#include "src/util/rng.hpp"

namespace qcongest::apps {

struct ExactCycleResult {
  bool found = false;       // a cycle of *exactly* length L exists (one-sided)
  net::RunResult cost;
  std::size_t repetitions = 0;
};

/// Extension feature (the paper's Section 5.2 remark): detecting cycles of
/// exactly length L (the C_4, C_6, C_8, C_10 problems). The paper's remark
/// builds on the color-BFS of [CFGGLO20]; as a documented substitution we
/// implement the classical color-coding base (Alon–Yuster–Zwick): every
/// node samples a color in [L]; a cycle is witnessed when a token walks
/// colors 0, 1, ..., L-1 and closes back on its origin — the distinct
/// colors force the walk to be a simple cycle of length exactly L, so the
/// detection is one-sided. Each repetition catches a fixed L-cycle with
/// probability 2L / L^L; `repetitions` (0 = auto) defaults to the 2/3 count
/// ceil(ln 3 * L^L / (2L)).
///
/// Practical for L <= 6 (the repetition count grows as L^L / 2L).
ExactCycleResult exact_cycle_detection(const net::Graph& graph, std::size_t length,
                                       util::Rng& rng, std::size_t repetitions = 0);

/// The auto repetition count used when `repetitions` is 0.
std::size_t exact_cycle_default_repetitions(std::size_t length);

}  // namespace qcongest::apps
