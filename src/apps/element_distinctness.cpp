#include "src/apps/element_distinctness.hpp"

#include <stdexcept>
#include <unordered_map>

#include "src/framework/distributed_oracle.hpp"
#include "src/framework/distributed_state.hpp"
#include "src/net/bfs.hpp"
#include "src/net/pipeline.hpp"
#include "src/util/combinatorics.hpp"

namespace qcongest::apps {

namespace {

void validate(const net::Graph& graph, const std::vector<std::vector<query::Value>>& data,
              std::int64_t value_range) {
  if (data.size() != graph.num_nodes()) {
    throw std::invalid_argument("element distinctness: one vector per node");
  }
  if (data.empty() || data[0].empty()) {
    throw std::invalid_argument("element distinctness: empty input");
  }
  for (const auto& row : data) {
    if (row.size() != data[0].size()) {
      throw std::invalid_argument("element distinctness: vector sizes differ");
    }
  }
  if (value_range < 1) {
    throw std::invalid_argument("element distinctness: value_range < 1");
  }
}

std::optional<query::CollisionPair> find_collision_exact(
    const std::vector<std::int64_t>& totals) {
  std::unordered_map<std::int64_t, std::size_t> seen;
  seen.reserve(totals.size());
  for (std::size_t j = 0; j < totals.size(); ++j) {
    auto [it, inserted] = seen.try_emplace(totals[j], j);
    if (!inserted) return query::CollisionPair{it->second, j, totals[j]};
  }
  return std::nullopt;
}

}  // namespace

DistinctnessResult element_distinctness_vector_quantum(
    const net::Graph& graph, const std::vector<std::vector<query::Value>>& data,
    std::int64_t value_range, util::Rng& rng) {
  validate(graph, data, value_range);
  const std::size_t n = graph.num_nodes();
  const std::size_t k = data[0].size();

  net::Engine engine(graph, 1, rng.engine()());
  DistinctnessResult result;

  auto election = net::elect_leader(engine);
  result.cost += election.cost;
  net::BfsTree tree = net::build_bfs_tree(engine, election.leader);
  result.cost += tree.cost;

  // Lemma 12: p = D; A = [N n] (sums of n values in [N]), oplus = +.
  framework::OracleConfig config;
  config.domain_size = k;
  config.parallelism = std::max<std::size_t>(1, tree.height);
  config.value_bits = std::max<unsigned>(
      1, util::ceil_log2(static_cast<std::uint64_t>(value_range) * n + 1));
  config.combine = [](std::int64_t a, std::int64_t b) { return a + b; };
  config.identity = 0;
  framework::DistributedOracle oracle(engine, tree, config, data);

  result.collision = query::element_distinctness(oracle, rng);
  result.batches = oracle.ledger().batches;
  result.cost += oracle.total_cost();
  return result;
}

DistinctnessResult element_distinctness_vector_classical(
    const net::Graph& graph, const std::vector<std::vector<query::Value>>& data,
    std::int64_t value_range) {
  validate(graph, data, value_range);
  const std::size_t n = graph.num_nodes();

  net::Engine engine(graph);
  DistinctnessResult result;

  auto election = net::elect_leader(engine);
  result.cost += election.cost;
  net::BfsTree tree = net::build_bfs_tree(engine, election.leader);
  result.cost += tree.cost;

  std::size_t value_words = framework::words_for_bits(
      std::max<unsigned>(1, util::ceil_log2(
                                static_cast<std::uint64_t>(value_range) * n + 1)),
      n);
  auto conv = net::pipelined_convergecast(
      engine, tree, data, value_words,
      [](std::int64_t a, std::int64_t b) { return a + b; }, /*quantum=*/false);
  result.cost += conv.cost;
  result.collision = find_collision_exact(conv.totals);
  result.batches = 1;
  return result;
}

namespace {

std::vector<std::vector<query::Value>> nodes_to_vector_instance(
    const net::Graph& graph, const std::vector<query::Value>& values) {
  // Corollary 14's reduction: k = n, x_j^{(v)} = value_v if j == v else 0.
  // Values are shifted by +1 so that the padding zeros never collide with a
  // genuine value (the paper's [N] is 1-based).
  const std::size_t n = graph.num_nodes();
  if (values.size() != n) {
    throw std::invalid_argument("element distinctness: one value per node");
  }
  std::vector<std::vector<query::Value>> data(n, std::vector<query::Value>(n, 0));
  for (std::size_t v = 0; v < n; ++v) {
    if (values[v] < 0) {
      throw std::invalid_argument("element distinctness: negative value");
    }
    data[v][v] = values[v] + 1;
  }
  return data;
}

}  // namespace

DistinctnessResult element_distinctness_nodes_quantum(
    const net::Graph& graph, const std::vector<query::Value>& values,
    std::int64_t value_range, util::Rng& rng) {
  auto data = nodes_to_vector_instance(graph, values);
  auto result = element_distinctness_vector_quantum(graph, data, value_range + 1, rng);
  if (result.collision) result.collision->value -= 1;  // undo the shift
  return result;
}

DistinctnessResult element_distinctness_nodes_classical(
    const net::Graph& graph, const std::vector<query::Value>& values,
    std::int64_t value_range) {
  auto data = nodes_to_vector_instance(graph, values);
  auto result = element_distinctness_vector_classical(graph, data, value_range + 1);
  if (result.collision) result.collision->value -= 1;
  return result;
}

}  // namespace qcongest::apps
