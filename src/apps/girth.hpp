#pragma once

#include <optional>

#include "src/apps/cycle_detection.hpp"

namespace qcongest::apps {

struct GirthResult {
  std::optional<std::size_t> girth;  // nullopt for forests
  net::RunResult cost;
  std::size_t charged_rounds = 0;
  std::size_t iterations = 0;  // geometric-search iterations performed
};

/// Corollary 26: compute the girth by geometric search over cycle lengths
/// k = 3, 4, 4(1+mu), 4(1+mu)^2, ... using the clustered cycle detection of
/// Lemma 25 per step. One-sided error: the result is never smaller than the
/// girth; with probability >= 2/3 it equals the girth. No upper bound on g
/// needs to be known in advance.
///
/// Substitution note (DESIGN.md): the paper opens with the O~(n^{1/5})
/// quantum triangle finding of [CFGLO22]; we run our own cycle machinery at
/// k = 3 instead, which preserves correctness and the g >= 4 asymptotics.
GirthResult girth_quantum(const net::Graph& graph, double mu, util::Rng& rng);

/// Classical baseline: every node BFSes to depth n (the [PRT12]-style exact
/// girth computation), Theta(n) measured rounds even on constant-girth
/// graphs — the [FHW12] lower-bound regime the quantum algorithm beats.
GirthResult girth_classical(const net::Graph& graph);

/// Girth boosted to success >= 1 - delta: one-sided error means a found
/// girth is never below the truth, so the minimum over O(log 1/delta)
/// independent runs is sound.
GirthResult girth_quantum_boosted(const net::Graph& graph, double mu, double delta,
                                  util::Rng& rng);

}  // namespace qcongest::apps
