#include "src/apps/meeting_scheduling.hpp"

#include <stdexcept>

#include "src/framework/distributed_oracle.hpp"
#include "src/net/bfs.hpp"
#include "src/net/pipeline.hpp"
#include "src/query/parallel_minfind.hpp"
#include "src/util/combinatorics.hpp"

namespace qcongest::apps {

namespace {

void validate_calendars(const net::Graph& graph, const Calendars& calendars) {
  if (calendars.size() != graph.num_nodes()) {
    throw std::invalid_argument("meeting scheduling: one calendar per node");
  }
  if (calendars.empty() || calendars[0].empty()) {
    throw std::invalid_argument("meeting scheduling: no slots");
  }
  for (const auto& c : calendars) {
    if (c.size() != calendars[0].size()) {
      throw std::invalid_argument("meeting scheduling: calendar sizes differ");
    }
    for (query::Value v : c) {
      if (v != 0 && v != 1) {
        throw std::invalid_argument("meeting scheduling: calendars must be 0/1");
      }
    }
  }
}

}  // namespace

MeetingSchedulingResult meeting_scheduling_reference(const Calendars& calendars) {
  MeetingSchedulingResult result;
  const std::size_t k = calendars[0].size();
  for (std::size_t i = 0; i < k; ++i) {
    query::Value total = 0;
    for (const auto& c : calendars) total += c[i];
    if (i == 0 || total > result.availability) {
      result.availability = total;
      result.best_slot = i;
    }
  }
  result.cost.completed = true;
  return result;
}

MeetingSchedulingResult meeting_scheduling_quantum(const net::Graph& graph,
                                                   const Calendars& calendars,
                                                   util::Rng& rng,
                                                   const NetOptions& options) {
  validate_calendars(graph, calendars);
  const std::size_t n = graph.num_nodes();
  const std::size_t k = calendars[0].size();

  net::Engine engine(graph, options.bandwidth, rng.engine()());
  options.configure(engine);
  MeetingSchedulingResult result;

  auto election = net::elect_leader(engine);
  result.cost += election.cost;
  net::BfsTree tree = net::build_bfs_tree(engine, election.leader);
  result.cost += tree.cost;

  // Lemma 10: p = D (we use the measured tree height, the leader's actual
  // knowledge of the network depth), A = [n] so q = ceil(log n).
  framework::OracleConfig config;
  config.domain_size = k;
  config.parallelism = std::max<std::size_t>(1, tree.height);
  config.value_bits = std::max<unsigned>(1, util::ceil_log2(n + 1));
  config.combine = [](std::int64_t a, std::int64_t b) { return a + b; };
  config.identity = 0;
  config.profiler = options.metrics;
  framework::DistributedOracle oracle(engine, tree, config, calendars);

  result.best_slot = query::maxfind(oracle, rng);
  result.availability = oracle.peek(result.best_slot);
  result.batches = oracle.ledger().batches;
  result.cost += oracle.total_cost();
  return result;
}

MeetingSchedulingResult meeting_scheduling_classical(const net::Graph& graph,
                                                     const Calendars& calendars,
                                                     const NetOptions& options) {
  validate_calendars(graph, calendars);
  net::Engine engine(graph, options.bandwidth, options.seed);
  options.configure(engine);
  MeetingSchedulingResult result;

  auto election = net::elect_leader(engine);
  result.cost += election.cost;
  net::BfsTree tree = net::build_bfs_tree(engine, election.leader);
  result.cost += tree.cost;

  // One batch of k parallel queries: the whole input is aggregated up the
  // tree, pipelined over the k slots. Theta(D + k) rounds.
  auto conv = net::pipelined_convergecast(
      engine, tree, calendars, /*value_words=*/1,
      [](std::int64_t a, std::int64_t b) { return a + b; }, /*quantum=*/false);
  result.cost += conv.cost;

  for (std::size_t i = 0; i < conv.totals.size(); ++i) {
    if (i == 0 || conv.totals[i] > result.availability) {
      result.availability = conv.totals[i];
      result.best_slot = i;
    }
  }
  result.batches = 1;
  return result;
}

}  // namespace qcongest::apps
