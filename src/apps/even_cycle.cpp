#include "src/apps/even_cycle.hpp"

#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "src/net/bfs.hpp"
#include "src/net/pipeline.hpp"
#include "src/util/combinatorics.hpp"

namespace qcongest::apps {

namespace {

constexpr std::int32_t kTagColorToken = 40;
constexpr std::int32_t kTagCycleClosed = 41;

/// One color-coding repetition. Colors are sampled locally in round 0 and
/// exchanged with neighbors (1 round); color-0 nodes then emit tokens
/// (origin, dist) that may only move to a neighbor of color dist mod L, and
/// a token at dist L-1 closes the cycle if its origin is adjacent.
class ColorCodingProgram final : public net::NodeProgram {
 public:
  ColorCodingProgram(std::size_t length) : length_(length) {}

  bool witnessed() const { return witnessed_; }

  void on_round(net::Context& ctx, std::span<const net::Message> inbox) override {
    const std::size_t degree = ctx.neighbors().size();
    if (ctx.round() == 0) {
      color_ = ctx.rng().index(length_);
      neighbor_color_.assign(degree, 0);
      outbox_.resize(degree);
      for (net::NodeId u : ctx.neighbors()) {
        ctx.send(u, net::Word{kTagColorToken, -1, static_cast<std::int64_t>(color_),
                              false});
      }
      return;
    }

    for (const net::Message& m : inbox) {
      if (m.word.tag == kTagCycleClosed) {
        witnessed_ = true;
        continue;
      }
      if (m.word.tag != kTagColorToken) continue;
      if (m.word.a < 0) {
        // Neighbor color announcement (round 1).
        neighbor_color_[neighbor_index(ctx, m.from)] =
            static_cast<std::size_t>(m.word.b);
        if (++colors_known_ == degree && color_ == 0) {
          // Seed my own walk: I am the origin at dist 0.
          accept_token(ctx, ctx.id(), 0);
        }
        continue;
      }
      accept_token(ctx, static_cast<std::size_t>(m.word.a),
                   static_cast<std::size_t>(m.word.b));
    }

    for (std::size_t ni = 0; ni < outbox_.size(); ++ni) {
      auto& queue = outbox_[ni];
      for (std::size_t budget = ctx.bandwidth(); budget > 0 && !queue.empty();
           --budget) {
        ctx.send(ctx.neighbors()[ni], queue.front());
        queue.pop_front();
      }
    }
  }

 private:
  std::size_t neighbor_index(net::Context& ctx, net::NodeId u) const {
    const auto& adj = ctx.neighbors();
    return static_cast<std::size_t>(
        std::find(adj.begin(), adj.end(), u) - adj.begin());
  }

  void accept_token(net::Context& ctx, std::size_t origin, std::size_t dist) {
    // My color must match the walk position; dedupe per origin.
    if (color_ != dist % length_) return;
    if (!seen_.insert(origin).second) return;
    if (dist + 1 == length_) {
      // Close the cycle if the origin is a neighbor.
      for (std::size_t ni = 0; ni < ctx.neighbors().size(); ++ni) {
        if (ctx.neighbors()[ni] == origin) {
          outbox_[ni].push_back(net::Word{kTagCycleClosed, 0, 0, false});
          witnessed_ = true;  // the witness edge itself is on the cycle
        }
      }
      return;
    }
    std::size_t next_color = (dist + 1) % length_;
    for (std::size_t ni = 0; ni < ctx.neighbors().size(); ++ni) {
      if (neighbor_color_[ni] != next_color) continue;
      outbox_[ni].push_back(net::Word{kTagColorToken,
                                      static_cast<std::int64_t>(origin),
                                      static_cast<std::int64_t>(dist + 1), false});
    }
  }

  std::size_t length_;
  std::size_t color_ = 0;
  std::vector<std::size_t> neighbor_color_;
  std::size_t colors_known_ = 0;
  std::unordered_set<std::size_t> seen_;
  bool witnessed_ = false;
  std::vector<std::deque<net::Word>> outbox_;
};

}  // namespace

std::size_t exact_cycle_default_repetitions(std::size_t length) {
  double p = 2.0 * static_cast<double>(length) /
             std::pow(static_cast<double>(length), static_cast<double>(length));
  return static_cast<std::size_t>(std::ceil(std::log(3.0) / p)) + 1;
}

ExactCycleResult exact_cycle_detection(const net::Graph& graph, std::size_t length,
                                       util::Rng& rng, std::size_t repetitions) {
  if (length < 3) throw std::invalid_argument("exact_cycle_detection: length < 3");
  if (length > 6) {
    throw std::invalid_argument(
        "exact_cycle_detection: color coding impractical beyond L = 6");
  }
  const std::size_t n = graph.num_nodes();
  if (repetitions == 0) repetitions = exact_cycle_default_repetitions(length);

  ExactCycleResult result;
  result.repetitions = repetitions;
  net::Engine engine(graph, 1, rng.engine()());

  bool found = false;
  for (std::size_t rep = 0; rep < repetitions && !found; ++rep) {
    std::vector<std::unique_ptr<net::NodeProgram>> programs;
    programs.reserve(n);
    for (net::NodeId v = 0; v < n; ++v) {
      programs.push_back(std::make_unique<ColorCodingProgram>(length));
    }
    std::size_t limit = 8 * (n * length + n) + 64;
    result.cost += engine.run(programs, limit);
    for (net::NodeId v = 0; v < n; ++v) {
      if (static_cast<ColorCodingProgram&>(*programs[v]).witnessed()) found = true;
    }
  }

  if (found) {
    // Broadcast the verdict: leader election + one downcast, O(D).
    auto election = net::elect_leader(engine);
    result.cost += election.cost;
    net::BfsTree tree = net::build_bfs_tree(engine, election.leader);
    result.cost += tree.cost;
    result.cost += net::pipelined_downcast(engine, tree, {1}, false).cost;
  }
  result.found = found;
  return result;
}

}  // namespace qcongest::apps
