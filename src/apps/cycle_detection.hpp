#pragma once

#include <optional>
#include <vector>

#include "src/net/graph.hpp"
#include "src/util/rng.hpp"
#include "src/net/engine.hpp"

namespace qcongest::apps {

/// Sentinel for "no cycle found" inside the min-semigroup aggregation.
inline constexpr std::int64_t kNoCycle = 1 << 20;

struct CycleSearchResult {
  std::optional<std::size_t> cycle_length;  // smallest cycle <= k found
  net::RunResult cost;
  std::size_t charged_rounds = 0;  // non-measured rounds (Lemma 24 clustering)
  std::size_t batches = 0;
};

/// The truncated multi-source BFS-meeting subroutine shared by the light-
/// and heavy-cycle procedures: BFS tokens from every source up to
/// `depth_limit`, restricted to `active` nodes; every node records the
/// smallest cycle-length candidate (d + d') witnessed by token meetings.
/// Returns per-node candidates (kNoCycle if none) and the measured cost.
struct CycleBfsResult {
  std::vector<std::int64_t> candidate;  // [node]
  net::RunResult cost;
};
CycleBfsResult cycle_bfs(net::Engine& engine, const std::vector<net::NodeId>& sources,
                         const std::vector<bool>& active, std::size_t depth_limit);

/// The per-query token pass of the heavy-cycle stage ([CFGGLO20]'s
/// procedure): for each query vertex s in `queries`, stage 1 floods a BFS
/// from s itself, stage 2 floods BFSs from every neighbor of s on G \ {s}
/// (tokens tagged by query slot; each node joins the first branch it sees
/// per slot, so the neighbor BFSs partition the graph as in the paper).
/// candidate[v][slot] is the smallest cycle witness (<= k) node v saw for
/// that query. Measured cost O(|queries| + k).
struct PerSourceCandidates {
  std::vector<std::vector<std::int64_t>> candidate;  // [node][slot]
  net::RunResult cost;
};
PerSourceCandidates per_source_cycle_candidates(net::Engine& engine,
                                                const std::vector<net::NodeId>& queries,
                                                std::size_t k, bool stage2);

/// Light-cycle stage of Lemma 23: all nodes of degree <= degree_threshold
/// run truncated BFS simultaneously; a min-convergecast delivers the
/// smallest candidate to the leader. Exact for cycles that avoid heavy
/// nodes; measured O(k + n^{ceil(k/2) beta}) rounds.
CycleSearchResult light_cycle_detection(const net::Graph& graph, std::size_t k,
                                        std::size_t degree_threshold);

/// Lemma 23: find the smallest cycle of length <= k (k >= 3 here; the paper
/// states k >= 4, triangles work identically in our simulator and Corollary
/// 26's triangle case is documented as a substitution for [CFGLO22]).
/// Light and heavy stages with the rebalanced beta; success >= 2/3 when a
/// cycle of length <= k exists; never reports a cycle when none exists.
/// Measured O(D + (Dn)^{1/2 - 1/(4 ceil(k/2) + 2)}) rounds.
CycleSearchResult cycle_detection(const net::Graph& graph, std::size_t k,
                                  util::Rng& rng);

/// Lemma 25: the diameter-independent version — Lemma 24 clustering
/// (charged, not measured; see DESIGN.md) + per-color parallel runs of
/// cycle_detection on cluster neighborhoods. Measured + charged
/// O~(k + (kn)^{1/2 - 1/(4 ceil(k/2) + 2)}) rounds.
CycleSearchResult cycle_detection_clustered(const net::Graph& graph, std::size_t k,
                                            util::Rng& rng);

/// The paper's rebalanced light/heavy threshold
/// beta = (1 + log_n(D)) / (1 + 2 ceil(k/2)); exposed for the ablation
/// bench sweeping beta.
double cycle_beta(std::size_t n, std::size_t diameter, std::size_t k);

/// Lemma 23 with an explicit beta (ablation entry point).
CycleSearchResult cycle_detection_with_beta(const net::Graph& graph, std::size_t k,
                                            double beta, util::Rng& rng);

}  // namespace qcongest::apps
