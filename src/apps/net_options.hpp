#pragma once

#include <cstdint>
#include <vector>

namespace qcongest::apps {

/// Network-simulation options shared by the applications.
struct NetOptions {
  /// CONGEST(B): words per edge per direction per round.
  std::size_t bandwidth = 1;
  /// Engine seed (node-local randomness).
  std::uint64_t seed = 1;
  /// When non-empty (one bit per node), the run reports the words crossing
  /// this bipartition in RunResult::cut_words — the induced two-party
  /// communication of the reduction arguments (Lemmas 11/13/15, Thm 18).
  std::vector<bool> tracked_cut;
};

}  // namespace qcongest::apps
