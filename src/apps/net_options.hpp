#pragma once

#include <cstdint>
#include <vector>

#include "src/net/engine.hpp"
#include "src/net/fault.hpp"
#include "src/obs/round_profiler.hpp"
#include "src/recover/checkpoint.hpp"
#include "src/recover/watchdog.hpp"

namespace qcongest::apps {

/// Network-simulation options shared by the applications.
struct NetOptions {
  /// CONGEST(B): words per edge per direction per round.
  std::size_t bandwidth = 1;
  /// Engine seed (node-local randomness).
  std::uint64_t seed = 1;
  /// When non-empty (one bit per node), the run reports the words crossing
  /// this bipartition in RunResult::cut_words — the induced two-party
  /// communication of the reduction arguments (Lemmas 11/13/15, Thm 18).
  std::vector<bool> tracked_cut;
  /// Deterministic fault schedule applied to every delivery (drops,
  /// corruption, duplication, crash windows). Default: perfect network.
  net::FaultPlan fault_plan;
  /// kReliable runs every protocol over the ack/retransmit link layer
  /// (src/net/reliable.hpp) — required for correctness under an active
  /// fault plan unless the app brings its own recovery.
  net::Transport transport = net::Transport::kDirect;
  net::ReliableParams reliable_params;
  /// When non-null, every delivery of every run is recorded here (see
  /// Engine::set_trace) — the determinism auditor in tools/chaos_run diffs
  /// two such recordings byte-for-byte.
  net::Trace* trace = nullptr;
  /// When non-null, installed as the engine's passive observer; the
  /// model-conformance verifier (src/check/verifier.hpp) is the intended
  /// client. Must outlive every run of the configured engine.
  net::EngineObserver* observer = nullptr;
  /// When non-null, the metrics tap: a RoundProfiler recording per-round
  /// traffic series and phase spans for run reports (src/obs). The engine
  /// has a single observer slot, so the profiler takes it and forwards
  /// every callback to `observer` — both taps see identical streams. Must
  /// outlive every run of the configured engine.
  obs::RoundProfiler* metrics = nullptr;
  /// Worker threads for the engine's deterministic sharded round execution
  /// (Engine::set_threads). 1 = serial; any value produces byte-identical
  /// runs. No-op under Transport::kReliable.
  std::size_t threads = 1;
  /// Crash-with-amnesia recovery: when enabled, the engine checkpoints node
  /// state per CheckpointPolicy and amnesia-crashed nodes rebuild themselves
  /// from their last checkpoint plus neighbor-assisted catch-up (src/recover).
  /// The extra traffic is reported in RunResult::recovery_words/rounds.
  recover::RecoveryPolicy recovery;
  /// When non-null, a run-level liveness watchdog inserted into the observer
  /// chain: it converts quiescence-without-termination and retransmit-storm
  /// livelock into a thrown recover::LivelockError naming suspected-dead
  /// nodes. Must outlive every run of the configured engine.
  recover::Watchdog* watchdog = nullptr;

  /// Apply cut tracking, the fault plan, the transport, recovery, and any
  /// trace / observer taps to an engine (bandwidth and seed are constructor
  /// parameters of Engine). Observer chain: metrics -> watchdog -> observer.
  void configure(net::Engine& engine) const {
    engine.track_cut(tracked_cut);
    if (fault_plan.active()) engine.set_fault_plan(fault_plan);
    engine.set_transport(transport, reliable_params);
    engine.set_trace(trace);
    engine.set_recovery(recovery);
    net::EngineObserver* tail = observer;
    if (watchdog != nullptr) {
      watchdog->set_downstream(tail);
      tail = watchdog;
    }
    if (metrics != nullptr) {
      metrics->set_downstream(tail);
      tail = metrics;
    }
    engine.set_observer(tail);
    engine.set_threads(threads);
  }
};

}  // namespace qcongest::apps
