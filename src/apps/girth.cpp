#include "src/apps/girth.hpp"

#include <cmath>
#include <stdexcept>

#include "src/net/bfs.hpp"
#include "src/net/pipeline.hpp"

namespace qcongest::apps {

GirthResult girth_quantum(const net::Graph& graph, double mu, util::Rng& rng) {
  if (mu <= 0.0 || mu > 1.0) throw std::invalid_argument("girth: mu must be in (0, 1]");
  GirthResult result;

  // Cycles, if any, have length <= 2D + 1; past that we declare a forest.
  const std::size_t k_max = 2 * graph.diameter() + 1;

  double k_target = 3.0;  // triangle step first (substitution for [CFGLO22])
  while (true) {
    auto k = static_cast<std::size_t>(std::floor(k_target));
    ++result.iterations;
    CycleSearchResult step = cycle_detection_clustered(graph, std::min(k, k_max), rng);
    result.cost += step.cost;
    result.charged_rounds += step.charged_rounds;
    if (step.cycle_length) {
      result.girth = step.cycle_length;  // one-sided: a found cycle is real
      return result;
    }
    if (k >= k_max) return result;  // no cycle at full length: forest
    k_target = (k < 4) ? 4.0 : k_target * (1.0 + mu);
  }
}

GirthResult girth_quantum_boosted(const net::Graph& graph, double mu, double delta,
                                  util::Rng& rng) {
  if (delta <= 0.0 || delta >= 1.0) {
    throw std::invalid_argument("girth boosted: delta must be in (0, 1)");
  }
  auto reps = static_cast<std::size_t>(
                  std::ceil(std::log(1.0 / delta) / std::log(3.0))) +
              1;
  GirthResult combined;
  for (std::size_t r = 0; r < reps; ++r) {
    GirthResult run = girth_quantum(graph, mu, rng);
    combined.cost += run.cost;
    combined.charged_rounds += run.charged_rounds;
    combined.iterations += run.iterations;
    if (run.girth && (!combined.girth || *run.girth < *combined.girth)) {
      combined.girth = run.girth;
    }
  }
  return combined;
}

GirthResult girth_classical(const net::Graph& graph) {
  GirthResult result;
  net::Engine engine(graph, 1, 11);
  const std::size_t n = graph.num_nodes();

  // All nodes BFS to full depth simultaneously; min candidate convergecast.
  std::vector<bool> active(n, true);
  std::vector<net::NodeId> sources(n);
  for (net::NodeId v = 0; v < n; ++v) sources[v] = v;
  auto bfs = cycle_bfs(engine, sources, active, n);
  result.cost += bfs.cost;

  auto election = net::elect_leader(engine);
  result.cost += election.cost;
  net::BfsTree tree = net::build_bfs_tree(engine, election.leader);
  result.cost += tree.cost;
  std::vector<std::vector<std::int64_t>> values(n);
  for (net::NodeId v = 0; v < n; ++v) values[v] = {bfs.candidate[v]};
  auto conv = net::pipelined_convergecast(
      engine, tree, values, 1,
      [](std::int64_t a, std::int64_t b) { return std::min(a, b); }, false);
  result.cost += conv.cost;

  if (conv.totals[0] < kNoCycle) {
    result.girth = static_cast<std::size_t>(conv.totals[0]);
  }
  result.iterations = 1;
  return result;
}

}  // namespace qcongest::apps
