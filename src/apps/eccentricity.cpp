#include "src/apps/eccentricity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/framework/distributed_oracle.hpp"
#include "src/net/bfs.hpp"
#include "src/net/multi_bfs.hpp"
#include "src/net/pipeline.hpp"
#include "src/query/mean_estimation.hpp"
#include "src/query/parallel_minfind.hpp"
#include "src/util/combinatorics.hpp"

namespace qcongest::apps {

namespace {

struct Setup {
  net::Engine engine;
  net::BfsTree tree;
  net::RunResult cost;
};

Setup make_setup(const net::Graph& graph, std::uint64_t seed,
                 const NetOptions& options = {}) {
  if (!graph.connected()) {
    throw std::invalid_argument("eccentricity: graph must be connected");
  }
  Setup s{net::Engine(graph, options.bandwidth, seed ^ options.seed), {}, {}};
  options.configure(s.engine);
  auto election = net::elect_leader(s.engine);
  s.cost += election.cost;
  s.tree = net::build_bfs_tree(s.engine, election.leader);
  s.cost += s.tree.cost;
  return s;
}

/// The Corollary 9 on-the-fly subroutine of Lemma 21: a batch of node-index
/// queries triggers a multi-source BFS from exactly those nodes (Lemma 20);
/// node v's contribution for query j is d(v, j) and the framework's
/// max-convergecast assembles ecc(j).
framework::DistributedOracle make_ecc_oracle(Setup& setup, const net::Graph& graph,
                                             obs::RoundProfiler* profiler = nullptr) {
  const std::size_t n = graph.num_nodes();
  framework::OracleConfig config;
  config.domain_size = n;
  config.parallelism = std::max<std::size_t>(1, setup.tree.height);
  config.value_bits = std::max<unsigned>(1, util::ceil_log2(n));
  config.combine = [](std::int64_t a, std::int64_t b) { return std::max(a, b); };
  config.identity = 0;
  config.profiler = profiler;

  framework::DistributedOracle::BatchComputer computer =
      [&setup, n](std::span<const std::size_t> indices) {
        std::vector<net::NodeId> sources(indices.begin(), indices.end());
        auto bfs = net::multi_source_bfs(setup.engine, sources, n);
        framework::DistributedOracle::BatchValues out;
        out.cost = bfs.cost;
        out.per_node.assign(n, std::vector<query::Value>(indices.size(), 0));
        for (std::size_t v = 0; v < n; ++v) {
          for (std::size_t slot = 0; slot < indices.size(); ++slot) {
            out.per_node[v][slot] = static_cast<query::Value>(bfs.dist[v][slot]);
          }
        }
        return out;
      };
  auto truth = [&graph](std::size_t j) {
    return static_cast<query::Value>(graph.eccentricity(j));
  };
  return {setup.engine, setup.tree, config, computer, truth};
}

EccentricityResult extremum_quantum(const net::Graph& graph, util::Rng& rng,
                                    bool maximum, const NetOptions& options = {}) {
  Setup setup = make_setup(graph, rng.engine()(), options);
  EccentricityResult result;
  result.cost = setup.cost;

  framework::DistributedOracle oracle = make_ecc_oracle(setup, graph, options.metrics);
  std::size_t witness = maximum ? query::maxfind(oracle, rng) : query::minfind(oracle, rng);
  result.witness = witness;
  result.value = static_cast<std::size_t>(oracle.peek(witness));
  result.batches = oracle.ledger().batches;
  result.cost += oracle.total_cost();
  return result;
}

EccentricityResult extremum_classical(const net::Graph& graph, bool maximum,
                                      const NetOptions& options = {}) {
  Setup setup = make_setup(graph, 4, options);
  EccentricityResult result;
  result.cost = setup.cost;
  const std::size_t n = graph.num_nodes();

  // Full APSP: BFS from every node (O(n + D)), then one convergecast
  // assembling every eccentricity at the leader.
  std::vector<net::NodeId> all(n);
  for (std::size_t v = 0; v < n; ++v) all[v] = v;
  auto bfs = net::multi_source_bfs(setup.engine, all, n);
  result.cost += bfs.cost;

  std::vector<std::vector<std::int64_t>> dist_rows(n);
  for (std::size_t v = 0; v < n; ++v) {
    dist_rows[v].assign(bfs.dist[v].begin(), bfs.dist[v].end());
  }
  auto conv = net::pipelined_convergecast(
      setup.engine, setup.tree, dist_rows, /*value_words=*/1,
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); },
      /*quantum=*/false);
  result.cost += conv.cost;

  result.witness = 0;
  for (std::size_t j = 0; j < n; ++j) {
    bool better = maximum ? conv.totals[j] > conv.totals[result.witness]
                          : conv.totals[j] < conv.totals[result.witness];
    if (better) result.witness = j;
  }
  result.value = static_cast<std::size_t>(conv.totals[result.witness]);
  result.batches = 1;
  return result;
}

/// Lemma 22's sample oracle: one batch = p random nodes' eccentricities,
/// produced by the same downcast + multi-BFS + max-convergecast pattern.
class EccentricitySampler final : public query::SampleOracle {
 public:
  EccentricitySampler(Setup& setup, const net::Graph& graph)
      : setup_(&setup), graph_(&graph) {
    const std::size_t n = graph.num_nodes();
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      double e = static_cast<double>(graph.eccentricity(v));
      sum += e;
      sum_sq += e * e;
    }
    mean_ = sum / static_cast<double>(n);
    variance_ = sum_sq / static_cast<double>(n) - mean_ * mean_;
  }

  std::size_t parallelism() const override {
    return std::max<std::size_t>(1, setup_->tree.height);
  }
  double true_mean() const override { return mean_; }
  double true_variance() const override { return variance_; }

  net::RunResult network_cost() const { return network_cost_; }

 protected:
  std::vector<double> draw(std::size_t count, util::Rng& rng) override {
    const std::size_t n = graph_->num_nodes();
    // The leader samples `count` node indices and shares them (Lemma 7).
    std::vector<net::NodeId> sources;
    std::vector<std::int64_t> payload;
    for (std::size_t i = 0; i < count; ++i) {
      sources.push_back(rng.index(n));
      payload.push_back(static_cast<std::int64_t>(sources.back()));
    }
    network_cost_ += net::pipelined_downcast(setup_->engine, setup_->tree, payload,
                                             /*quantum=*/true)
                         .cost;
    auto bfs = net::multi_source_bfs(setup_->engine, sources, n);
    network_cost_ += bfs.cost;
    std::vector<std::vector<std::int64_t>> rows(n);
    for (std::size_t v = 0; v < n; ++v) {
      rows[v].assign(bfs.dist[v].begin(), bfs.dist[v].end());
    }
    auto conv = net::pipelined_convergecast(
        setup_->engine, setup_->tree, rows, /*value_words=*/1,
        [](std::int64_t a, std::int64_t b) { return std::max(a, b); },
        /*quantum=*/true);
    network_cost_ += conv.cost;
    return {conv.totals.begin(), conv.totals.end()};
  }

 private:
  Setup* setup_;
  const net::Graph* graph_;
  double mean_ = 0.0;
  double variance_ = 0.0;
  net::RunResult network_cost_;
};

}  // namespace

EccentricityResult diameter_quantum(const net::Graph& graph, util::Rng& rng,
                                    const NetOptions& options) {
  return extremum_quantum(graph, rng, /*maximum=*/true, options);
}

EccentricityResult diameter_quantum_echo(const net::Graph& graph, util::Rng& rng) {
  Setup setup = make_setup(graph, rng.engine()());
  EccentricityResult result;
  result.cost = setup.cost;
  const std::size_t n = graph.num_nodes();

  framework::OracleConfig config;
  config.domain_size = n;
  config.parallelism = std::max<std::size_t>(1, setup.tree.height);
  config.value_bits = std::max<unsigned>(1, util::ceil_log2(n));
  config.combine = [](std::int64_t a, std::int64_t b) { return std::max(a, b); };
  config.identity = 0;

  framework::DistributedOracle::BatchComputer computer =
      [&setup, n](std::span<const std::size_t> indices) {
        std::vector<net::NodeId> sources(indices.begin(), indices.end());
        auto echo = net::multi_source_eccentricities(setup.engine, sources, n);
        framework::DistributedOracle::BatchValues out;
        out.cost = echo.bfs.cost;
        out.cost += echo.echo_cost;
        // Only the queried node holds its eccentricity; everyone else
        // contributes the max-identity.
        out.per_node.assign(n, std::vector<query::Value>(indices.size(), 0));
        for (std::size_t slot = 0; slot < indices.size(); ++slot) {
          out.per_node[indices[slot]][slot] =
              static_cast<query::Value>(echo.eccentricity[slot]);
        }
        return out;
      };
  auto truth = [&graph](std::size_t j) {
    return static_cast<query::Value>(graph.eccentricity(j));
  };
  framework::DistributedOracle oracle(setup.engine, setup.tree, config, computer,
                                      truth);

  result.witness = query::maxfind(oracle, rng);
  result.value = static_cast<std::size_t>(oracle.peek(result.witness));
  result.batches = oracle.ledger().batches;
  result.cost += oracle.total_cost();
  return result;
}

EccentricityResult radius_quantum(const net::Graph& graph, util::Rng& rng,
                                  const NetOptions& options) {
  return extremum_quantum(graph, rng, /*maximum=*/false, options);
}

namespace {

EccentricityResult extremum_boosted(const net::Graph& graph, double delta,
                                    util::Rng& rng, bool maximum) {
  if (delta <= 0.0 || delta >= 1.0) {
    throw std::invalid_argument("boosted eccentricity: delta must be in (0, 1)");
  }
  auto reps = static_cast<std::size_t>(
                  std::ceil(std::log(1.0 / delta) / std::log(3.0))) +
              1;
  EccentricityResult best;
  for (std::size_t r = 0; r < reps; ++r) {
    EccentricityResult run = extremum_quantum(graph, rng, maximum);
    bool better = r == 0 || (maximum ? run.value > best.value : run.value < best.value);
    net::RunResult total = best.cost;
    total += run.cost;
    std::size_t batches = best.batches + run.batches;
    if (better) best = run;
    best.cost = total;
    best.batches = batches;
  }
  return best;
}

}  // namespace

EccentricityResult diameter_classical(const net::Graph& graph,
                                      const NetOptions& options) {
  return extremum_classical(graph, /*maximum=*/true, options);
}

EccentricityResult diameter_quantum_boosted(const net::Graph& graph, double delta,
                                            util::Rng& rng) {
  return extremum_boosted(graph, delta, rng, /*maximum=*/true);
}

EccentricityResult radius_quantum_boosted(const net::Graph& graph, double delta,
                                          util::Rng& rng) {
  return extremum_boosted(graph, delta, rng, /*maximum=*/false);
}

EccentricityResult radius_classical(const net::Graph& graph,
                                    const NetOptions& options) {
  return extremum_classical(graph, /*maximum=*/false, options);
}

AverageEccentricityResult average_eccentricity_classical(const net::Graph& graph) {
  Setup setup = make_setup(graph, 5);
  AverageEccentricityResult result;
  result.cost = setup.cost;
  const std::size_t n = graph.num_nodes();

  std::vector<net::NodeId> all(n);
  for (std::size_t v = 0; v < n; ++v) all[v] = v;
  auto bfs = net::multi_source_bfs(setup.engine, all, n);
  result.cost += bfs.cost;
  std::vector<std::vector<std::int64_t>> dist_rows(n);
  for (std::size_t v = 0; v < n; ++v) {
    dist_rows[v].assign(bfs.dist[v].begin(), bfs.dist[v].end());
  }
  auto conv = net::pipelined_convergecast(
      setup.engine, setup.tree, dist_rows, /*value_words=*/1,
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); },
      /*quantum=*/false);
  result.cost += conv.cost;

  double total = 0.0;
  for (std::int64_t ecc : conv.totals) total += static_cast<double>(ecc);
  result.estimate = total / static_cast<double>(n);
  result.batches = 1;
  return result;
}

AverageEccentricityResult average_eccentricity_quantum(const net::Graph& graph,
                                                       double epsilon, util::Rng& rng) {
  if (epsilon <= 0.0) {
    throw std::invalid_argument("average eccentricity: epsilon <= 0");
  }
  Setup setup = make_setup(graph, rng.engine()());
  AverageEccentricityResult result;
  result.cost = setup.cost;

  EccentricitySampler sampler(setup, graph);
  // Lemma 22: sigma <= D; the leader knows the tree height as its D proxy.
  double sigma_bound = std::max<double>(1.0, static_cast<double>(setup.tree.height));
  auto estimate = query::estimate_mean(sampler, epsilon, sigma_bound, rng);
  result.estimate = estimate.value;
  result.batches = estimate.batches;
  result.cost += sampler.network_cost();
  return result;
}

}  // namespace qcongest::apps
