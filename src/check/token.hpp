#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qcongest::check {

/// A small C++ lexer backing the qlint rule engine (see lint.hpp). It is
/// not a compiler front end — no keyword table, no literal decoding — but
/// it is exact about the things that made the old line-regex linter lie:
///
///   - comments (// and /* */, multi-line) produce no tokens at all;
///   - string literals (including encoding prefixes and raw strings
///     R"delim(...)delim") and char literals are single tokens, so rule
///     triggers inside them ("std::thread", "rand()") can never match;
///   - backslash-newline splices are handled everywhere, so a string or
///     declaration continued across lines is still one token stream;
///   - preprocessor directives (with their continuation lines) collapse
///     into one kDirective token — directive bodies are not code;
///   - multi-character punctuators (::, ->, ==, >>, ...) are kept whole,
///     so `std::thread::id` is distinguishable from `std::thread` and a
///     template `>` never masquerades as a comparison.
///
/// Known simplification: a raw string literal un-splices backslash-newline
/// in real C++ (phase 1/2 are reverted inside raw strings); this lexer
/// splices first, so a raw string containing a literal backslash-newline
/// pair loses it. No rule depends on string contents, so this cannot
/// change a diagnostic.

enum class TokenKind {
  kIdentifier,  // identifiers and keywords alike
  kNumber,      // pp-number: 123, 0x1f, 1.5e-9, .5, 1'000'000
  kString,      // "...", u8"...", R"(...)": full spelling, quotes included
  kChar,        // 'a', '\n', u'x'
  kPunct,       // one punctuator, multi-char forms kept whole
  kDirective,   // a whole preprocessor directive, continuations joined
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  std::size_t line = 0;    // 1-based line the token starts on
  std::size_t column = 0;  // 1-based byte column on that line
};

/// Lex `source` into tokens. Never throws; unterminated constructs
/// (strings, block comments) consume to end of input.
std::vector<Token> tokenize(const std::string& source);

/// True when a kNumber token spells a floating-point literal: it carries a
/// '.', a decimal exponent (e/E outside a hex literal), or a hex exponent
/// (p/P). `1e-9` and `.5` count; `10`, `0x1f`, and `1'000` do not.
bool is_float_literal(const Token& token);

}  // namespace qcongest::check
