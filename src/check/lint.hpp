#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace qcongest::check {

/// qlint — repo-specific static checks the general-purpose tools cannot
/// express, built on the token stream of check/token.hpp (v2: the old
/// line-regex engine lied about strings, raw strings, multi-line
/// constructs, and preprocessor continuations; the lexer does not).
///
/// Twelve rules, each guarding a determinism, accounting, or
/// service-safety contract of the reproduction (see DESIGN.md
/// "Invariants & static analysis"):
///
///   banned-random      rand()/srand()/std::random_device/time(NULL) outside
///                      src/util — all randomness must flow through the
///                      seeded util::Rng or runs are not reproducible.
///   raw-thread         std::thread / std::jthread / std::async / .detach()
///                      outside src/util/thread_pool — ad-hoc threads bypass
///                      the pool's shard scheduling and exception discipline,
///                      the two things the deterministic parallel engine
///                      relies on.
///   unordered-iter     iteration over a std::unordered_{map,set} (range-for
///                      or .begin()): the visit order is implementation-
///                      defined, so anything it feeds — protocol messages,
///                      samples, accumulated floats — silently varies across
///                      standard libraries. Container names are resolved
///                      through a cross-TU symbol index built from #include
///                      edges, not the old "foo.cpp pairs with foo.hpp"
///                      guess.
///   float-equal        == / != against a floating-point literal inside
///                      src/quantum or src/query; amplitudes carry rounding
///                      error, compare within a tolerance.
///   runresult-discard  a statement in src/framework that calls a phase
///                      returning RunResult (or a *Result carrying .cost)
///                      and drops the value — rounds vanish from the
///                      accounting, the exact failure mode "Mind the O-tilde"
///                      warns about.
///   unsnapshotted-state  a NodeProgram that declares recoverability by
///                      overriding snapshot() but has a mutable data member
///                      (trailing-underscore, non-pointer, non-const) that
///                      neither snapshot() nor restore() mentions: after an
///                      amnesia restart that member silently reverts to its
///                      constructed value and the node replays from a state
///                      that never existed (see DESIGN.md "Recovery model").
///
/// The concurrency & wire-safety pack, aimed at the src/serve layer (a
/// single-threaded poll() reactor over a shared util::ThreadPool fed by an
/// untrusted length-prefixed wire protocol):
///
///   reactor-blocking-call  a blocking call in the reactor translation
///                      units (src/serve/server.*, tools/qcongestd): sleeps,
///                      .wait()/.join(), parallel_for, blocking stdio. The
///                      reactor thread owns every socket; one blocking call
///                      stalls every connection.
///   lock-across-submit a std::lock_guard/unique_lock/scoped_lock scope
///                      that reaches a .submit() hand-off (the pool or the
///                      service) or a condition-variable wait taking a
///                      different lock. The callback/wait can need the held
///                      mutex — instant deadlock under load, invisible at
///                      low concurrency.
///   untrusted-narrowing  a value parsed from the wire (get_u16/get_u32,
///                      parse_u64/parse_size out-params, JobSpec payload
///                      fields) flows into a narrowing cast, a narrower
///                      declaration, or arithmetic before any bound check
///                      (<, <=, >, >=, std::min/clamp). Attacker-chosen
///                      lengths must be range-checked before they size or
///                      index anything. Re-parsing a variable re-taints it.
///   catch-all-swallow  a `catch (...)` that neither rethrows (throw;,
///                      std::current_exception) nor produces a structured
///                      error (set_label/set_outcome, an *error* sink,
///                      stderr). Swallowed exceptions erase failures from
///                      the accounting; designated isolation boundaries
///                      carry an explicit qlint-allow with a reason.
///   hot-path-alloc     a heap allocation (new, unreserved push_back,
///                      std::function, make_unique/make_shared/malloc) in
///                      the Engine round loop, Statevector::apply*, or the
///                      SIMD kernels — the measured hot paths must not
///                      allocate per round.
///   unchecked-io-result  a statement-level `write`/`pwrite`/`fsync`/
///                      `fdatasync`/`rename`/`ftruncate` (bare or
///                      ::-qualified POSIX spelling, including the
///                      `(void)` cast form) whose return value is dropped
///                      in src/serve or src/cache. Those return values are
///                      the only place ENOSPC/EIO surface; the durability
///                      layer must check them and degrade explicitly.
///
/// Suppression must name its reason: append
///   `// qlint-allow(rule): reason` to the flagged line (a bare
/// `qlint-allow(rule)` with no reason does not suppress), or list
///   `rule:path-substring[:line-substring]  # reason`
/// in an allowlist file (entries without a trailing `# reason` are a
/// configuration error).

struct LintDiagnostic {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
  std::string line_text;  // the offending source line, for allowlist needles

  std::string to_string() const {
    return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
  }
};

struct LintConfig {
  /// Entries "rule:path-substring" (allow everywhere in matching files) or
  /// "rule:path-substring:line-substring" (allow only on matching lines).
  /// "*" matches any rule or any path.
  std::vector<std::string> allow;
};

/// One entry per rule: the id diagnostics carry and a one-line summary.
/// The single source of truth behind `qlint --list-rules` and the SARIF
/// rule metadata, so the help text cannot drift from the engine.
struct RuleInfo {
  const char* id;
  const char* summary;
};
const std::vector<RuleInfo>& rule_infos();

/// Identifiers declared as std::unordered_{map,set} in `content` (token
/// pass, multi-line declarations included). Exposed so the symbol index
/// can feed included headers' member names into every including TU.
std::vector<std::string> collect_unordered_names(const std::string& content);

/// Targets of quoted #include directives in `content` ("src/net/graph.hpp"
/// style), in order of appearance. Angle-bracket includes are external and
/// skipped.
std::vector<std::string> collect_includes(const std::string& content);

/// Cross-TU name resolution: which unordered-container identifiers are in
/// scope for a file, following the quoted-#include graph transitively over
/// every file the index has seen. Replaces the old heuristic of pairing
/// foo.cpp with a sibling foo.hpp — a member declared in any included
/// header is now visible in every TU that includes it.
class SymbolIndex {
 public:
  void add_file(const std::string& path, const std::string& content);

  /// Unordered-container names visible in `path`: its own plus those of
  /// all transitively included indexed files. Sorted, unique.
  std::vector<std::string> unordered_names_for(const std::string& path) const;

 private:
  struct Entry {
    std::vector<std::string> names;
    std::vector<std::string> includes;
  };
  /// Indexed path whose generic form equals `include` or ends with
  /// "/<include>"; empty if none.
  const std::string* resolve(const std::string& include) const;

  std::map<std::string, Entry> files_;
};

/// Lint one translation unit. `extra_unordered_names` augments the names
/// found in `content` itself (pass the symbol index's view for the file).
std::vector<LintDiagnostic> lint_source(
    const std::string& path, const std::string& content, const LintConfig& config = {},
    const std::vector<std::string>& extra_unordered_names = {});

struct LintResult {
  std::vector<LintDiagnostic> diagnostics;
  std::size_t files_scanned = 0;
};

/// Recursively lint every .cpp/.hpp under each root (skipping build/
/// directories), sharing one cross-TU symbol index across all roots so a
/// tests/ or tools/ TU sees the unordered members of the src/ headers it
/// includes. Results are sorted by (file, line).
LintResult lint_trees(const std::vector<std::string>& roots,
                      const LintConfig& config = {});

/// Single-root convenience wrapper around lint_trees.
LintResult lint_tree(const std::string& root, const LintConfig& config = {});

/// Parse an allowlist file: one `rule:path[:needle]  # reason` entry per
/// line, '#' at line start comments the whole line. An entry without a
/// trailing reason comment throws std::invalid_argument — every
/// suppression is a debt note and must say why it exists.
LintConfig load_allowlist(const std::string& path);

// SARIF 2.1.0 rendering of diagnostics lives in check/sarif.hpp.

}  // namespace qcongest::check
