#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qcongest::check {

/// qlint — repo-specific static checks the general-purpose tools cannot
/// express. Six rules, each guarding a determinism or accounting contract
/// of the reproduction (see DESIGN.md "Invariants & static analysis"):
///
///   banned-random      rand()/srand()/std::random_device/time(NULL) outside
///                      src/util — all randomness must flow through the
///                      seeded util::Rng or runs are not reproducible.
///   raw-thread         std::thread / std::jthread / std::async / .detach()
///                      outside src/util/thread_pool — ad-hoc threads bypass
///                      the pool's shard scheduling and exception discipline,
///                      the two things the deterministic parallel engine
///                      relies on.
///   unordered-iter     iteration over a std::unordered_{map,set} (range-for
///                      or .begin()): the visit order is implementation-
///                      defined, so anything it feeds — protocol messages,
///                      samples, accumulated floats — silently varies across
///                      standard libraries.
///   float-equal        == / != against a floating-point literal inside
///                      src/quantum or src/query; amplitudes carry rounding
///                      error, compare within a tolerance.
///   runresult-discard  a statement in src/framework that calls a phase
///                      returning RunResult (or a *Result carrying .cost)
///                      and drops the value — rounds vanish from the
///                      accounting, the exact failure mode "Mind the O-tilde"
///                      warns about.
///   unsnapshotted-state  a NodeProgram that declares recoverability by
///                      overriding snapshot() but has a mutable data member
///                      (trailing-underscore, non-pointer, non-const) that
///                      neither snapshot() nor restore() mentions: after an
///                      amnesia restart that member silently reverts to its
///                      constructed value and the node replays from a state
///                      that never existed (see DESIGN.md "Recovery model").
///
/// Suppression: append `// qlint-allow(rule): reason` to the flagged line,
/// or list `rule:path-substring[:line-substring]` in an allowlist file.

struct LintDiagnostic {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
  std::string line_text;  // the offending source line, for allowlist needles

  std::string to_string() const {
    return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
  }
};

struct LintConfig {
  /// Entries "rule:path-substring" (allow everywhere in matching files) or
  /// "rule:path-substring:line-substring" (allow only on matching lines).
  /// "*" matches any rule or any path.
  std::vector<std::string> allow;
};

/// Identifiers declared as std::unordered_{map,set} in `content` (heuristic,
/// one declaration per line). Exposed so lint_tree can feed a header's
/// member names into its implementation file.
std::vector<std::string> collect_unordered_names(const std::string& content);

/// Lint one translation unit. `extra_unordered_names` augments the names
/// found in `content` itself (pass the paired header's names).
std::vector<LintDiagnostic> lint_source(
    const std::string& path, const std::string& content, const LintConfig& config = {},
    const std::vector<std::string>& extra_unordered_names = {});

struct LintResult {
  std::vector<LintDiagnostic> diagnostics;
  std::size_t files_scanned = 0;
};

/// Recursively lint every .cpp/.hpp under `root` (skipping build/
/// directories), pairing each foo.cpp with its sibling foo.hpp for
/// unordered-container member names. Results are sorted by (file, line).
LintResult lint_tree(const std::string& root, const LintConfig& config = {});

/// Parse an allowlist file: one entry per line, '#' starts a comment.
LintConfig load_allowlist(const std::string& path);

}  // namespace qcongest::check
