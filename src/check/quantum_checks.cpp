#include "src/check/quantum_checks.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>
#include <vector>

#include "src/quantum/circuit.hpp"
#include "src/quantum/sparse_statevector.hpp"
#include "src/quantum/statevector.hpp"

namespace qcongest::check {

namespace {

std::optional<Violation> norm_violation(double norm, const std::string& where,
                                        double tol) {
  if (std::abs(norm - 1.0) <= tol) return std::nullopt;
  return Violation{InvariantKind::kStateNorm, false, 0, false, 0, 0,
                   where + ": norm " + std::to_string(norm) + " drifted more than " +
                       std::to_string(tol) + " from 1"};
}

}  // namespace

std::optional<Violation> check_state_norm(const quantum::Statevector& state,
                                          const std::string& where, double tol) {
  return norm_violation(state.norm(), where, tol);
}

std::optional<Violation> check_state_norm(const quantum::SparseStatevector& state,
                                          const std::string& where, double tol) {
  return norm_violation(state.norm(), where, tol);
}

std::optional<Violation> check_circuit_unitary(const quantum::Circuit& circuit,
                                               const std::string& where, double tol) {
  const unsigned n = circuit.num_qubits();
  if (n > kMaxUnitarityQubits) {
    throw std::invalid_argument(
        "check_circuit_unitary: matrix reconstruction is exponential; refuse > " +
        std::to_string(kMaxUnitarityQubits) + " qubits");
  }
  const std::size_t dim = std::size_t{1} << n;

  // Column b of the circuit's matrix is the circuit applied to |b>.
  std::vector<std::vector<quantum::Amplitude>> columns(dim);
  for (std::size_t b = 0; b < dim; ++b) {
    quantum::Statevector state(n, static_cast<quantum::BasisState>(b));
    circuit.apply_to(state);
    columns[b].assign(state.amplitudes().begin(), state.amplitudes().end());
  }

  // U is unitary iff its columns are orthonormal: <col_i, col_j> = delta_ij.
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = i; j < dim; ++j) {
      quantum::Amplitude dot{0.0, 0.0};
      for (std::size_t r = 0; r < dim; ++r) {
        dot += std::conj(columns[i][r]) * columns[j][r];
      }
      const double expected = i == j ? 1.0 : 0.0;
      if (std::abs(dot - quantum::Amplitude{expected, 0.0}) <= tol) continue;
      return Violation{
          InvariantKind::kCircuitUnitarity, false, 0, false, 0, 0,
          where + ": <col " + std::to_string(i) + ", col " + std::to_string(j) +
              "> = (" + std::to_string(dot.real()) + ", " + std::to_string(dot.imag()) +
              "), expected " + std::to_string(expected) +
              " — the circuit does not preserve norms"};
    }
  }
  return std::nullopt;
}

}  // namespace qcongest::check
