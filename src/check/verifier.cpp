#include "src/check/verifier.hpp"

#include <algorithm>

#include "src/check/quantum_checks.hpp"

namespace qcongest::check {

const char* invariant_name(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kBandwidthPerRound:
      return "bandwidth-per-round";
    case InvariantKind::kBandwidthAggregate:
      return "bandwidth-aggregate";
    case InvariantKind::kConservation:
      return "conservation";
    case InvariantKind::kCounterMismatch:
      return "counter-mismatch";
    case InvariantKind::kQuiescence:
      return "quiescence";
    case InvariantKind::kStateNorm:
      return "state-norm";
    case InvariantKind::kCircuitUnitarity:
      return "circuit-unitarity";
    case InvariantKind::kModelRule:
      return "model-rule";
  }
  return "unknown";
}

std::string Violation::to_string() const {
  std::string out = "[";
  out += invariant_name(kind);
  out += "]";
  if (has_round) out += " round " + std::to_string(round) + ",";
  if (has_edge) {
    out += " edge " + std::to_string(from) + " -> " + std::to_string(to) + ",";
  }
  if (out.back() == ',') out.pop_back();
  out += ": " + detail;
  return out;
}

void Verifier::bind_graph(const net::Graph& graph) {
  graph_ = &graph;
  const std::size_t n = graph_->num_nodes();
  slot_offset_.assign(n + 1, 0);
  for (net::NodeId v = 0; v < n; ++v) {
    slot_offset_[v + 1] = slot_offset_[v] + graph_->degree(v);
  }
}

void Verifier::attach(net::Engine& engine) {
  bind_graph(engine.graph());
  bandwidth_ = engine.bandwidth();
  run_active_ = false;
  engine.set_observer(this);
}

void Verifier::detach() {
  graph_ = nullptr;
  run_active_ = false;
}

std::size_t Verifier::slot(net::NodeId from, net::NodeId to) const {
  const auto& adj = graph_->neighbors(from);
  auto it = std::find(adj.begin(), adj.end(), to);
  // The engine rejects non-neighbor sends before notifying us, so a miss
  // here means the graph changed under the verifier — report against slot 0
  // rather than crash.
  if (it == adj.end()) return slot_offset_[from];
  return slot_offset_[from] + static_cast<std::size_t>(it - adj.begin());
}

void Verifier::on_run_begin(const net::Engine& engine) {
  // Self-initializing: a verifier handed to an engine through set_observer
  // alone (e.g. via apps::NetOptions::observer, where the engine is built
  // deep inside an application) binds to the graph on the first run — and
  // re-binds when a new engine on a different graph picks it up.
  if (graph_ != &engine.graph()) bind_graph(engine.graph());
  bandwidth_ = engine.bandwidth();
  edge_words_round_.assign(slot_offset_.empty() ? 0 : slot_offset_.back(), 0);
  edge_words_total_.assign(edge_words_round_.size(), 0);
  sends_ = delivered_ = dropped_ = corrupted_ = duplicated_ = 0;
  retransmissions_ = max_edge_words_ = passes_ = 0;
  any_send_ = false;
  last_send_round_ = 0;
  run_active_ = true;
}

void Verifier::on_send(std::size_t round, net::NodeId from, net::NodeId to,
                       const net::Word& word, std::size_t edge_words) {
  (void)word;
  if (!run_active_) return;
  const std::size_t s = slot(from, to);
  ++edge_words_round_[s];
  ++edge_words_total_[s];
  ++sends_;
  any_send_ = true;
  last_send_round_ = round;
  max_edge_words_ = std::max(max_edge_words_, edge_words_round_[s]);
  if (edge_words_round_[s] > bandwidth_) {
    note(Violation{InvariantKind::kBandwidthPerRound, true, round, true, from, to,
                   std::to_string(edge_words_round_[s]) + " words on one edge, budget " +
                       std::to_string(bandwidth_)});
  }
  if (edge_words != edge_words_round_[s]) {
    note(Violation{InvariantKind::kCounterMismatch, true, round, true, from, to,
                   "engine counts " + std::to_string(edge_words) +
                       " words on this edge this round, observer counts " +
                       std::to_string(edge_words_round_[s])});
  }
}

void Verifier::on_delivery(std::size_t round, net::NodeId from, net::NodeId to,
                           net::DeliveryFate fate, bool corrupted, bool duplicated) {
  (void)round, (void)from, (void)to;
  if (!run_active_) return;
  switch (fate) {
    case net::DeliveryFate::kDelivered:
      ++delivered_;
      if (corrupted) ++corrupted_;
      if (duplicated) ++duplicated_;
      break;
    case net::DeliveryFate::kDroppedLottery:
    case net::DeliveryFate::kDroppedCrashed:
      ++dropped_;
      break;
  }
}

void Verifier::on_retransmission(std::size_t round) {
  (void)round;
  if (run_active_) ++retransmissions_;
}

void Verifier::on_round_end(std::size_t round) {
  (void)round;
  if (!run_active_) return;
  ++passes_;
  std::fill(edge_words_round_.begin(), edge_words_round_.end(), 0);
}

void Verifier::on_run_end(const net::RunResult& stats) {
  if (!run_active_) return;
  run_active_ = false;
  ++runs_verified_;

  // A pass that sent something is always followed by its on_round_end —
  // except the very last one when the run ends at the round limit, so give
  // the aggregate budget the benefit of that one pass.
  const std::size_t elapsed = std::max(passes_, any_send_ ? last_send_round_ + 1 : 0);

  // Per-edge aggregate budget: total words on a directed edge (reliable-
  // transport retransmissions included, since they are ordinary sends)
  // cannot exceed B x elapsed rounds.
  for (std::size_t s = 0; s < edge_words_total_.size(); ++s) {
    if (edge_words_total_[s] <= bandwidth_ * elapsed) continue;
    // Recover the edge from the slot for the report.
    net::NodeId from = 0;
    while (from + 1 < graph_->num_nodes() && slot_offset_[from + 1] <= s) ++from;
    net::NodeId to = graph_->neighbors(from)[s - slot_offset_[from]];
    note(Violation{InvariantKind::kBandwidthAggregate, false, 0, true, from, to,
                   std::to_string(edge_words_total_[s]) + " words over " +
                       std::to_string(elapsed) + " rounds, budget " +
                       std::to_string(bandwidth_) + "/round"});
  }
  if (retransmissions_ > sends_) {
    note(Violation{InvariantKind::kConservation, false, 0, false, 0, 0,
                   std::to_string(retransmissions_) + " retransmissions but only " +
                       std::to_string(sends_) + " sends — a retransmission is a send"});
  }

  // Word conservation through the fault lottery: every admitted word is
  // delivered or dropped, exactly once.
  if (sends_ != delivered_ + dropped_) {
    note(Violation{InvariantKind::kConservation, false, 0, false, 0, 0,
                   "sent " + std::to_string(sends_) + " != delivered " +
                       std::to_string(delivered_) + " + dropped " +
                       std::to_string(dropped_)});
  }

  // Counter honesty: the engine's public RunResult must match the tally
  // re-derived from the raw event stream.
  auto expect = [&](std::size_t engine_count, std::size_t observed, const char* name) {
    if (engine_count == observed) return;
    note(Violation{InvariantKind::kCounterMismatch, false, 0, false, 0, 0,
                   std::string(name) + ": engine reports " +
                       std::to_string(engine_count) + ", observer counted " +
                       std::to_string(observed)});
  };
  expect(stats.messages, sends_, "messages");
  expect(stats.dropped_words, dropped_, "dropped_words");
  expect(stats.corrupted_words, corrupted_, "corrupted_words");
  expect(stats.duplicated_words, duplicated_, "duplicated_words");
  expect(stats.retransmissions, retransmissions_, "retransmissions");
  expect(stats.max_edge_words, max_edge_words_, "max_edge_words");

  // Quiescence consistency: the round complexity the engine reports is the
  // index of the last pass that sent anything — nothing was sent after it,
  // and if anything was sent at all the count is that send's pass.
  const std::size_t expected_rounds = any_send_ ? last_send_round_ + 1 : 0;
  if (stats.rounds != expected_rounds) {
    note(Violation{InvariantKind::kQuiescence, true, expected_rounds, false, 0, 0,
                   "engine reports " + std::to_string(stats.rounds) +
                       " rounds, last observed send was in round " +
                       std::to_string(expected_rounds)});
  }
}

void Verifier::note(const net::CongestViolation& violation) {
  InvariantKind kind = violation.kind() == net::CongestViolation::Kind::kBandwidthExceeded
                           ? InvariantKind::kBandwidthPerRound
                           : InvariantKind::kModelRule;
  note(Violation{kind, true, violation.round(), true, violation.from(), violation.to(),
                 violation.what()});
}

void Verifier::note(Violation violation) { violations_.push_back(std::move(violation)); }

void Verifier::abandon_run() { run_active_ = false; }

void Verifier::check_state(const quantum::Statevector& state, const std::string& where,
                           double tol) {
  if (auto v = check_state_norm(state, where, tol)) note(std::move(*v));
}

void Verifier::check_state(const quantum::SparseStatevector& state,
                           const std::string& where, double tol) {
  if (auto v = check_state_norm(state, where, tol)) note(std::move(*v));
}

void Verifier::check_circuit(const quantum::Circuit& circuit, const std::string& where,
                             double tol) {
  if (auto v = check_circuit_unitary(circuit, where, tol)) note(std::move(*v));
}

std::string Verifier::report() const {
  if (violations_.empty()) {
    return "verifier: all invariants held over " + std::to_string(runs_verified_) +
           " run(s)";
  }
  std::string out = "verifier: " + std::to_string(violations_.size()) +
                    " violation(s) over " + std::to_string(runs_verified_) + " run(s)\n";
  for (const Violation& v : violations_) out += "  " + v.to_string() + "\n";
  return out;
}

void Verifier::reset() {
  violations_.clear();
  runs_verified_ = 0;
  run_active_ = false;
}

net::RunResult VerifiedEngine::run(
    std::span<const std::unique_ptr<net::NodeProgram>> programs,
    std::size_t max_rounds) {
  try {
    return engine_.run(programs, max_rounds);
  } catch (const net::CongestViolation& violation) {
    verifier_.note(violation);
    verifier_.abandon_run();
    net::RunResult partial = engine_.last_stats();
    partial.completed = false;
    return partial;
  }
}

}  // namespace qcongest::check
