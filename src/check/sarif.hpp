#pragma once

#include <string>
#include <vector>

#include "src/check/lint.hpp"

namespace qcongest::check {

/// Render diagnostics as a SARIF 2.1.0 document (one run, one result per
/// diagnostic, rule metadata from rule_infos()) so CI can publish
/// annotations and archive the artifact. Built on obs::JsonWriter, so the
/// output is deterministic: byte-identical for identical inputs, the same
/// contract the run reports carry (DESIGN.md §10).
std::string render_sarif(const std::vector<LintDiagnostic>& diagnostics);

}  // namespace qcongest::check
