#include "src/check/token.hpp"

#include <cctype>

namespace qcongest::check {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool digit(char c) { return c >= '0' && c <= '9'; }

/// The input after phase-2 line splicing: a flat character array plus the
/// original (line, column) of every surviving character, so tokens report
/// positions in the file the user sees.
struct Spliced {
  std::string text;
  std::vector<std::size_t> line;
  std::vector<std::size_t> column;
};

Spliced splice(const std::string& source) {
  Spliced out;
  out.text.reserve(source.size());
  out.line.reserve(source.size());
  out.column.reserve(source.size());
  std::size_t line = 1, column = 1;
  for (std::size_t i = 0; i < source.size(); ++i) {
    char c = source[i];
    // Backslash-newline (optionally with a \r) disappears entirely.
    if (c == '\\' && i + 1 < source.size()) {
      std::size_t j = i + 1;
      if (source[j] == '\r' && j + 1 < source.size()) ++j;
      if (source[j] == '\n') {
        i = j;
        ++line;
        column = 1;
        continue;
      }
    }
    out.text.push_back(c);
    out.line.push_back(line);
    out.column.push_back(column);
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return out;
}

/// Multi-character punctuators, longest first so greedy matching is right.
const char* kPuncts[] = {
    "<<=", ">>=", "<=>", "...", "->*", "::", "->", ".*", "==", "!=", "<=",
    ">=",  "&&",  "||",  "<<",  ">>",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",  "##",
};

/// True when the identifier ending at s[i] is a string-literal encoding
/// prefix (u8, u, U, L, R and their R-combinations).
bool string_prefix(const std::string& s, std::size_t start, std::size_t end) {
  std::string p = s.substr(start, end - start);
  return p == "u8" || p == "u" || p == "U" || p == "L" || p == "R" ||
         p == "u8R" || p == "uR" || p == "UR" || p == "LR";
}

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  Spliced in = splice(source);
  const std::string& s = in.text;
  std::vector<Token> tokens;
  std::size_t i = 0;
  bool line_start = true;  // only whitespace seen so far on this line

  auto emit = [&](TokenKind kind, std::size_t start, std::size_t end) {
    tokens.push_back(
        {kind, s.substr(start, end - start), in.line[start], in.column[start]});
  };

  while (i < s.size()) {
    char c = s[i];

    if (c == '\n') {
      line_start = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Comments vanish (a block comment spanning lines keeps line_start
    // conservative: text after it on a line is not a directive anyway).
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      while (i < s.size() && s[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      i += 2;
      while (i + 1 < s.size() && !(s[i] == '*' && s[i + 1] == '/')) ++i;
      i = i + 2 <= s.size() ? i + 2 : s.size();
      line_start = false;
      continue;
    }

    // A '#' opening a line swallows the whole (spliced) directive line.
    if (c == '#' && line_start) {
      std::size_t start = i;
      while (i < s.size() && s[i] != '\n') {
        // A // comment ends the directive text early.
        if (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '/') break;
        ++i;
      }
      std::size_t end = i;
      while (end > start && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
        --end;
      }
      emit(TokenKind::kDirective, start, end);
      while (i < s.size() && s[i] != '\n') ++i;
      continue;
    }
    line_start = false;

    // Identifier — possibly a string/char literal prefix.
    if (ident_start(c)) {
      std::size_t start = i;
      while (i < s.size() && ident_char(s[i])) ++i;
      if (i < s.size() && (s[i] == '"' || s[i] == '\'') &&
          string_prefix(s, start, i)) {
        // Fall through to the literal scanners with the prefix attached.
        bool raw = s[i - 1] == 'R';
        if (s[i] == '"' && raw) {
          // R"delim( ... )delim"
          std::size_t q = i;  // the opening quote
          std::size_t d = q + 1;
          while (d < s.size() && s[d] != '(' && s[d] != '"' && s[d] != ')' &&
                 s[d] != '\\' && !std::isspace(static_cast<unsigned char>(s[d]))) {
            ++d;
          }
          std::string close;
          close.push_back(')');
          close.append(s, q + 1, d - q - 1);
          close.push_back('"');
          std::size_t at = d < s.size() ? s.find(close, d) : std::string::npos;
          std::size_t end =
              at == std::string::npos ? s.size() : at + close.size();
          emit(TokenKind::kString, start, end);
          i = end;
          continue;
        }
        char quote = s[i];
        std::size_t j = i + 1;
        while (j < s.size() && s[j] != quote && s[j] != '\n') {
          if (s[j] == '\\' && j + 1 < s.size()) ++j;
          ++j;
        }
        if (j < s.size() && s[j] == quote) ++j;
        emit(quote == '"' ? TokenKind::kString : TokenKind::kChar, start, j);
        i = j;
        continue;
      }
      emit(TokenKind::kIdentifier, start, i);
      continue;
    }

    // Plain string literal.
    if (c == '"') {
      std::size_t start = i;
      std::size_t j = i + 1;
      while (j < s.size() && s[j] != '"' && s[j] != '\n') {
        if (s[j] == '\\' && j + 1 < s.size()) ++j;
        ++j;
      }
      if (j < s.size() && s[j] == '"') ++j;
      emit(TokenKind::kString, start, j);
      i = j;
      continue;
    }

    // Char literal. A ' between digits is a separator, but that path never
    // reaches here (numbers consume their separators below).
    if (c == '\'') {
      std::size_t start = i;
      std::size_t j = i + 1;
      while (j < s.size() && s[j] != '\'' && s[j] != '\n') {
        if (s[j] == '\\' && j + 1 < s.size()) ++j;
        ++j;
      }
      if (j < s.size() && s[j] == '\'') ++j;
      emit(TokenKind::kChar, start, j);
      i = j;
      continue;
    }

    // pp-number: starts with a digit, or '.' followed by a digit. Consumes
    // identifier chars, '.', digit separators, and exponent signs.
    if (digit(c) || (c == '.' && i + 1 < s.size() && digit(s[i + 1]))) {
      std::size_t start = i;
      ++i;
      while (i < s.size()) {
        char n = s[i];
        if (ident_char(n) || n == '.') {
          ++i;
        } else if (n == '\'' && i + 1 < s.size() && ident_char(s[i + 1])) {
          i += 2;  // digit separator
        } else if ((n == '+' || n == '-') && i > start &&
                   (s[i - 1] == 'e' || s[i - 1] == 'E' || s[i - 1] == 'p' ||
                    s[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      emit(TokenKind::kNumber, start, i);
      continue;
    }

    // Punctuation, longest match first.
    std::size_t matched = 0;
    for (const char* p : kPuncts) {
      std::size_t len = std::char_traits<char>::length(p);
      if (len <= s.size() - i && s.compare(i, len, p) == 0) {
        matched = len;
        break;
      }
    }
    if (matched == 0) matched = 1;
    emit(TokenKind::kPunct, i, i + matched);
    i += matched;
  }
  return tokens;
}

bool is_float_literal(const Token& token) {
  if (token.kind != TokenKind::kNumber) return false;
  const std::string& t = token.text;
  bool hex = t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X');
  if (hex) return t.find('p') != std::string::npos || t.find('P') != std::string::npos;
  if (t.find('.') != std::string::npos) return true;
  return t.find('e') != std::string::npos || t.find('E') != std::string::npos;
}

}  // namespace qcongest::check
