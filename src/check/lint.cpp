#include "src/check/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "src/check/token.hpp"

namespace qcongest::check {

namespace {

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(content.substr(start));
      break;
    }
    lines.push_back(content.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

/// The shared per-file context rules run against: the code token stream
/// (preprocessor directives filtered out — directive bodies are not code),
/// the raw lines for diagnostics, and the sink.
struct RuleCtx {
  const std::string& path;
  const std::vector<Token>& code;
  const std::vector<std::string>& raw_lines;
  std::vector<LintDiagnostic>& out;

  const Token& tok(std::size_t i) const { return code[i]; }
  std::size_t size() const { return code.size(); }
  bool ident_at(std::size_t i, const char* text) const {
    return i < code.size() && is_ident(code[i], text);
  }
  bool punct_at(std::size_t i, const char* text) const {
    return i < code.size() && is_punct(code[i], text);
  }
  void flag(std::size_t line, const std::string& rule, std::string message) {
    std::string text = line >= 1 && line <= raw_lines.size()
                           ? raw_lines[line - 1]
                           : std::string();
    out.push_back({path, line, rule, std::move(message), std::move(text)});
  }
};

/// Index one past the '>' matching the '<' at `open` (which must be a '<'
/// token). Angle depth ignores everything nested in parentheses; '>>'
/// closes two levels. Returns npos when unbalanced.
std::size_t match_angle(const std::vector<Token>& code, std::size_t open) {
  int depth = 0;
  int parens = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "(") ++parens;
    if (t.text == ")" && parens > 0) --parens;
    if (parens > 0) continue;
    if (t.text == "<") ++depth;
    if (t.text == ">") --depth;
    if (t.text == ">>") depth -= 2;
    if (t.text == ";" || t.text == "{") return std::string::npos;  // gave up
    if (depth <= 0) return i + 1;
  }
  return std::string::npos;
}

/// Index one past the ')' matching the '(' at `open`.
std::size_t match_paren(const std::vector<Token>& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (is_punct(code[i], "(")) ++depth;
    if (is_punct(code[i], ")")) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

std::vector<Token> code_tokens(const std::string& content) {
  std::vector<Token> code;
  for (Token& t : tokenize(content)) {
    if (t.kind != TokenKind::kDirective) code.push_back(std::move(t));
  }
  return code;
}

std::vector<std::string> collect_unordered_names_from(
    const std::vector<Token>& code) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (!(is_ident(code[i], "unordered_map") || is_ident(code[i], "unordered_set"))) {
      continue;
    }
    if (!is_punct(code[i + 1], "<")) continue;
    std::size_t after = match_angle(code, i + 1);
    if (after == std::string::npos) continue;
    if (after < code.size() && is_punct(code[after], "&")) ++after;  // ref params
    if (after < code.size() && code[after].kind == TokenKind::kIdentifier) {
      names.push_back(code[after].text);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

// --- Suppression ------------------------------------------------------------

enum class InlineAllow { kNone, kSuppressed, kMissingReason };

/// `// qlint-allow(rule): reason` on the raw line suppresses `rule` there.
/// A bare `qlint-allow(rule)` with no written reason matches but does not
/// suppress — every suppression is a debt note and must say why.
InlineAllow inline_allow(const std::string& raw_line, const std::string& rule) {
  InlineAllow found = InlineAllow::kNone;
  std::size_t at = 0;
  while ((at = raw_line.find("qlint-allow(", at)) != std::string::npos) {
    std::size_t open = at + std::string("qlint-allow(").size();
    std::size_t close = raw_line.find(')', open);
    at = open;
    if (close == std::string::npos) break;
    std::string listed = raw_line.substr(open, close - open);
    bool matches = false;
    std::istringstream parts(listed);
    std::string entry;
    while (std::getline(parts, entry, ',')) {
      entry.erase(std::remove_if(entry.begin(), entry.end(), ::isspace), entry.end());
      if (entry == rule || entry == "*") matches = true;
    }
    if (!matches) continue;
    std::size_t reason = close + 1;
    while (reason < raw_line.size() && raw_line[reason] == ' ') ++reason;
    bool has_reason = reason < raw_line.size() && raw_line[reason] == ':' &&
                      raw_line.find_first_not_of(" \t", reason + 1) != std::string::npos;
    if (has_reason) return InlineAllow::kSuppressed;
    found = InlineAllow::kMissingReason;
  }
  return found;
}

bool config_allowed(const LintConfig& config, const LintDiagnostic& diag) {
  for (const std::string& entry : config.allow) {
    std::size_t first = entry.find(':');
    if (first == std::string::npos) continue;
    std::string rule = entry.substr(0, first);
    std::string rest = entry.substr(first + 1);
    std::size_t second = rest.find(':');
    std::string path_sub = second == std::string::npos ? rest : rest.substr(0, second);
    std::string needle = second == std::string::npos ? "" : rest.substr(second + 1);
    if (rule != "*" && rule != diag.rule) continue;
    if (path_sub != "*" && diag.file.find(path_sub) == std::string::npos) continue;
    if (!needle.empty() && diag.line_text.find(needle) == std::string::npos) continue;
    return true;
  }
  return false;
}

// --- Rule: banned-random ----------------------------------------------------

void check_banned_random(RuleCtx& ctx) {
  // src/util is the one place allowed to touch entropy (it seeds util::Rng).
  if (path_contains(ctx.path, "src/util/") || path_contains(ctx.path, "util/rng")) {
    return;
  }
  auto flag = [&](std::size_t line, const std::string& what) {
    ctx.flag(line, "banned-random",
             what + ": all randomness must flow through the seeded util::Rng "
                   "(determinism contract; see DESIGN.md)");
  };
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const Token& t = ctx.tok(i);
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text == "random_device") {
      flag(t.line, "'std::random_device'");
    } else if (t.text == "rand" && ctx.punct_at(i + 1, "(")) {
      flag(t.line, "'rand()'");
    } else if (t.text == "srand") {
      flag(t.line, "'srand'");
    } else if (t.text == "time" && ctx.punct_at(i + 1, "(")) {
      bool null_seed = ctx.ident_at(i + 2, "NULL") || ctx.ident_at(i + 2, "nullptr") ||
                       (i + 2 < ctx.size() && ctx.tok(i + 2).kind == TokenKind::kNumber &&
                        ctx.tok(i + 2).text == "0");
      if (null_seed) flag(t.line, "'time(NULL)'-style seeding");
    }
  }
}

// --- Rule: raw-thread -------------------------------------------------------

void check_raw_thread(RuleCtx& ctx) {
  // The pool is the one blessed home for raw threads: it owns shard
  // determinism and exception propagation, so ad-hoc std::thread elsewhere
  // would bypass both.
  if (path_contains(ctx.path, "src/util/thread_pool")) return;
  auto flag = [&](std::size_t line, const std::string& what) {
    ctx.flag(line, "raw-thread",
             what + ": concurrency must go through util::ThreadPool, which "
                   "owns shard scheduling, exception propagation, and the "
                   "determinism contract (see DESIGN.md)");
  };
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    if (ctx.ident_at(i, "std") && ctx.punct_at(i + 1, "::") && i + 2 < ctx.size()) {
      const std::string& name = ctx.tok(i + 2).text;
      bool spawner = ctx.tok(i + 2).kind == TokenKind::kIdentifier &&
                     (name == "thread" || name == "jthread" || name == "async");
      // std::thread::id merely reads the id type; it spawns nothing.
      if (spawner && !ctx.punct_at(i + 3, "::")) {
        flag(ctx.tok(i).line, "'std::" + name + "'");
      }
    }
    if ((ctx.punct_at(i, ".") || ctx.punct_at(i, "->")) &&
        ctx.ident_at(i + 1, "detach") && ctx.punct_at(i + 2, "(")) {
      flag(ctx.tok(i + 1).line, "'.detach()'");
    }
  }
}

// --- Rule: unordered-iter ---------------------------------------------------

void check_unordered_iter(RuleCtx& ctx, const std::vector<std::string>& names) {
  if (names.empty()) return;
  auto is_known = [&](const Token& t) {
    return t.kind == TokenKind::kIdentifier &&
           std::binary_search(names.begin(), names.end(), t.text);
  };
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    if (!is_known(ctx.tok(i))) continue;
    bool hit = false;
    // Iterator walk: name.begin( / cbegin / rbegin.
    if (ctx.punct_at(i + 1, ".") && i + 2 < ctx.size() &&
        (ctx.ident_at(i + 2, "begin") || ctx.ident_at(i + 2, "cbegin") ||
         ctx.ident_at(i + 2, "rbegin")) &&
        ctx.punct_at(i + 3, "(")) {
      hit = true;
    }
    // Range-for: `for (decl : name)` — the ':' directly before the name,
    // inside a paren opened by `for`.
    if (!hit && i >= 1 && ctx.punct_at(i - 1, ":")) {
      int depth = 0;
      for (std::size_t j = i - 1; j-- > 0;) {
        const Token& t = ctx.tok(j);
        if (is_punct(t, ")")) ++depth;
        if (is_punct(t, "(")) {
          if (depth == 0) {
            hit = j > 0 && ctx.ident_at(j - 1, "for");
            break;
          }
          --depth;
        }
        if (is_punct(t, ";") || is_punct(t, "{")) break;
      }
    }
    if (hit) {
      ctx.flag(ctx.tok(i).line, "unordered-iter",
               "iteration over unordered container '" + ctx.tok(i).text +
                   "': visit order is implementation-defined and will differ "
                   "across standard libraries — sort first, or use "
                   "std::map/std::set/vector before the order can reach "
                   "messages, samples, or float sums");
    }
  }
}

// --- Rule: float-equal ------------------------------------------------------

void check_float_equal(RuleCtx& ctx) {
  if (!path_contains(ctx.path, "quantum/") && !path_contains(ctx.path, "query/")) {
    return;
  }
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    if (!(ctx.punct_at(i, "==") || ctx.punct_at(i, "!="))) continue;
    bool left = i > 0 && is_float_literal(ctx.tok(i - 1));
    std::size_t r = i + 1;
    if (ctx.punct_at(r, "+") || ctx.punct_at(r, "-")) ++r;  // unary sign
    bool right = r < ctx.size() && is_float_literal(ctx.tok(r));
    if (left || right) {
      ctx.flag(ctx.tok(i).line, "float-equal",
               "exact floating-point comparison against a literal in quantum "
               "code: amplitudes carry rounding error, compare within a "
               "tolerance (e.g. std::abs(x - y) <= 1e-9)");
    }
  }
}

// --- Rule: runresult-discard ------------------------------------------------

/// Framework phases whose return value carries round/word costs; discarding
/// one silently loses rounds from the accounting.
const char* kPhaseCalls[] = {
    "distribute_state",  "undistribute_state",     "distribute_state_unpipelined",
    "zero_reflection",   "amplification_iterate",  "pipelined_downcast",
    "unpipelined_downcast", "pipelined_convergecast", "elect_leader",
    "build_bfs_tree",    "multi_source_bfs",
};

void check_runresult_discard(RuleCtx& ctx) {
  if (!path_contains(ctx.path, "framework/")) return;
  bool at_start = true;  // start of file begins a statement
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const Token& t = ctx.tok(i);
    if (at_start && t.kind == TokenKind::kIdentifier) {
      // Unwind a namespace-qualified head: ns::...::name(.
      std::size_t j = i;
      while (j + 2 < ctx.size() && ctx.tok(j).kind == TokenKind::kIdentifier &&
             ctx.punct_at(j + 1, "::") &&
             ctx.tok(j + 2).kind == TokenKind::kIdentifier) {
        j += 2;
      }
      std::string which;
      for (const char* name : kPhaseCalls) {
        if (ctx.ident_at(j, name) && ctx.punct_at(j + 1, "(")) which = name;
      }
      // A bare `receiver.run(...)` / `receiver->run(...)` statement
      // discards the RunResult as well. Assignments, returns, and
      // accumulations never reach here: the statement would not *start*
      // with the receiver; "(void)" casts start with '('.
      if (which.empty() && j == i && ctx.tok(i).kind == TokenKind::kIdentifier &&
          (ctx.punct_at(i + 1, ".") || ctx.punct_at(i + 1, "->")) &&
          ctx.ident_at(i + 2, "run") && ctx.punct_at(i + 3, "(")) {
        which = "run";
      }
      if (!which.empty()) {
        ctx.flag(t.line, "runresult-discard",
                 "the RunResult (cost) of '" + which +
                     "' is discarded: rounds vanish from the complexity "
                     "accounting — accumulate it with += into the phase cost");
      }
    }
    at_start = t.kind == TokenKind::kPunct &&
               (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ":");
  }
}

// --- Rule: unsnapshotted-state ----------------------------------------------

/// Whole-file pass: inside every class deriving from NodeProgram that
/// overrides snapshot() — the act that declares the program recoverable —
/// each mutable data member (trailing underscore, non-pointer, non-const,
/// non-static) must appear by name in the snapshot() or restore() body, or
/// an amnesia restart silently resets it to its constructed value.
void check_unsnapshotted_state(RuleCtx& ctx) {
  struct Member {
    std::size_t line = 0;
    std::string name;
  };
  struct ClassState {
    int base_depth = 0;  // brace depth just before the class's '{'
    bool overrides_snapshot = false;
    bool out_of_line = false;  // snapshot/restore declared but defined elsewhere
    bool delegates = false;    // snapshot forwards to a wrapped program
    std::set<std::string> coverage;  // idents inside snapshot()/restore() bodies
    std::vector<Member> members;
    std::vector<Token> stmt;  // member-level statement being accumulated
  };
  std::vector<ClassState> stack;
  int depth = 0;
  bool capturing = false;  // inside a snapshot()/restore() body of stack.back()
  int capture_depth = 0;   // member depth of the capturing class

  auto finish_class = [&](ClassState& cls) {
    // Recoverable programs must cover every member — except forwarding
    // adapters, whose snapshot() delegates to a wrapped program
    // (`inner_->snapshot(...)`): their own members are transport state that
    // deliberately survives an amnesia wipe (the NIC analogy of DESIGN.md
    // "Recovery model"), not node state. A snapshot() defined out of line
    // is invisible here, so the class is skipped rather than guessed at.
    if (!cls.overrides_snapshot || cls.delegates || cls.out_of_line) return;
    for (const Member& m : cls.members) {
      if (cls.coverage.count(m.name) != 0) continue;
      ctx.flag(m.line, "unsnapshotted-state",
               "member '" + m.name +
                   "' of a recoverable NodeProgram (it overrides snapshot) is "
                   "serialized by neither snapshot() nor restore(): after an "
                   "amnesia restart it reverts to its constructed value and the "
                   "node replays from a state that never existed — cover it, or "
                   "mark deliberately reconstructed config with qlint-allow");
    }
  };

  auto process_member_stmt = [&](ClassState& cls) {
    // Member declaration: plain `Type name_ = init;` — no calls, no braces,
    // no pointers, not const / static / using.
    bool plain = true;
    for (const Token& t : cls.stmt) {
      if (t.kind == TokenKind::kPunct && (t.text == "(" || t.text == "{" || t.text == "*")) {
        plain = false;
      }
      if (t.kind == TokenKind::kIdentifier &&
          (t.text == "const" || t.text == "static" || t.text == "using")) {
        plain = false;
      }
    }
    if (!plain) return;
    for (const Token& t : cls.stmt) {
      if (t.kind == TokenKind::kIdentifier && t.text.size() > 1 &&
          t.text.back() == '_') {
        cls.members.push_back({t.line, t.text});
      }
    }
  };

  const std::vector<Token>& code = ctx.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];

    // New class/struct deriving from NodeProgram? (`enum class` is not a
    // class; `template <class T>` has no base clause before its body.)
    if ((is_ident(t, "class") || is_ident(t, "struct")) &&
        !(i > 0 && is_ident(code[i - 1], "enum"))) {
      // Scan the head: up to '{' starts a definition, ';' is a forward decl.
      std::size_t brace = std::string::npos;
      bool derives = false;
      bool seen_base_colon = false;
      for (std::size_t j = i + 1; j < code.size(); ++j) {
        if (is_punct(code[j], ";")) break;
        if (is_punct(code[j], "{")) {
          brace = j;
          break;
        }
        if (is_punct(code[j], ":")) seen_base_colon = true;
        if (seen_base_colon && is_ident(code[j], "NodeProgram")) derives = true;
      }
      if (brace != std::string::npos && derives) {
        ClassState cls;
        cls.base_depth = depth;
        stack.push_back(std::move(cls));
        // Fall through: the '{' below will be counted by the depth tracker
        // when the loop reaches it.
      }
    }

    bool member_level = !stack.empty() && !capturing &&
                        depth == stack.back().base_depth + 1;
    if (member_level && t.kind == TokenKind::kIdentifier &&
        (t.text == "snapshot" || t.text == "restore") && ctx.punct_at(i + 1, "(")) {
      // Method head at member depth: find whether a body follows.
      std::size_t after = match_paren(code, i + 1);
      bool has_body = false;
      std::size_t j = after;
      while (j != std::string::npos && j < code.size()) {
        if (is_punct(code[j], "{")) {
          has_body = true;
          break;
        }
        if (is_punct(code[j], ";")) break;
        if (is_punct(code[j], "=")) break;  // = 0 / = default
        ++j;
      }
      if (t.text == "snapshot") stack.back().overrides_snapshot = true;
      if (has_body) {
        capturing = true;
        capture_depth = depth;
        // The signature's identifiers count as coverage too (harmless: they
        // are parameter and type names, not members).
      } else {
        stack.back().out_of_line = true;
      }
      stack.back().stmt.clear();
    }

    if (capturing) {
      if (t.kind == TokenKind::kIdentifier) stack.back().coverage.insert(t.text);
      if (is_punct(t, "->") && ctx.ident_at(i + 1, "snapshot") &&
          ctx.punct_at(i + 2, "(")) {
        stack.back().delegates = true;
      }
    } else if (member_level) {
      if (is_punct(t, ";")) {
        process_member_stmt(stack.back());
        stack.back().stmt.clear();
      } else if (is_punct(t, ":") || is_punct(t, "{")) {
        stack.back().stmt.clear();  // access specifier / block opener
      } else if (!is_punct(t, "}")) {
        stack.back().stmt.push_back(t);
      }
    }

    if (is_punct(t, "{")) ++depth;
    if (is_punct(t, "}")) {
      --depth;
      if (capturing && !stack.empty() && depth <= capture_depth) capturing = false;
      while (!stack.empty() && depth <= stack.back().base_depth) {
        finish_class(stack.back());
        stack.pop_back();
        capturing = false;
      }
    }
  }
  while (!stack.empty()) {
    finish_class(stack.back());
    stack.pop_back();
  }
}

// --- Rule: reactor-blocking-call --------------------------------------------

void check_reactor_blocking_call(RuleCtx& ctx) {
  // The reactor translation units: the poll() loop in src/serve/server.*
  // and the daemon main that runs it. The reactor thread owns every socket
  // and all connection state; one blocking call stalls every tenant.
  if (!path_contains(ctx.path, "serve/server") &&
      !path_contains(ctx.path, "qcongestd")) {
    return;
  }
  auto flag = [&](std::size_t line, const std::string& what) {
    ctx.flag(line, "reactor-blocking-call",
             "blocking call " + what +
                 " in a reactor translation unit: the poll() loop thread owns "
                 "every socket, so one blocking call stalls all connections — "
                 "hand the work to the pool and return to poll()");
  };
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const Token& t = ctx.tok(i);
    if (is_ident(t, "this_thread") && ctx.punct_at(i + 1, "::") &&
        (ctx.ident_at(i + 2, "sleep_for") || ctx.ident_at(i + 2, "sleep_until"))) {
      flag(t.line, "'std::this_thread::" + ctx.tok(i + 2).text + "'");
    }
    if (t.kind == TokenKind::kIdentifier && ctx.punct_at(i + 1, "(") &&
        (t.text == "usleep" || t.text == "nanosleep" || t.text == "sleep" ||
         t.text == "system" || t.text == "getchar" || t.text == "fgets" ||
         t.text == "scanf" || t.text == "getline")) {
      flag(t.line, "'" + t.text + "()'");
    }
    if ((is_punct(t, ".") || is_punct(t, "->")) && i + 2 < ctx.size() &&
        ctx.tok(i + 1).kind == TokenKind::kIdentifier && ctx.punct_at(i + 2, "(")) {
      const std::string& m = ctx.tok(i + 1).text;
      if (m == "wait" || m == "wait_for" || m == "wait_until" || m == "join" ||
          m == "parallel_for") {
        flag(ctx.tok(i + 1).line, "'." + m + "()'");
      }
    }
  }
}

// --- Rule: lock-across-submit -----------------------------------------------

void check_lock_across_submit(RuleCtx& ctx) {
  struct HeldLock {
    std::string name;
    int depth = 0;  // brace depth the guard lives at
    bool active = true;
  };
  std::vector<HeldLock> locks;
  int depth = 0;
  const std::vector<Token>& code = ctx.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (is_punct(t, "{")) ++depth;
    if (is_punct(t, "}")) {
      while (!locks.empty() && locks.back().depth >= depth) locks.pop_back();
      --depth;
      continue;
    }

    // Guard declaration: lock_guard/unique_lock/scoped_lock/shared_lock,
    // optionally templated, then `name(` or `name{`.
    if (t.kind == TokenKind::kIdentifier &&
        (t.text == "lock_guard" || t.text == "unique_lock" ||
         t.text == "scoped_lock" || t.text == "shared_lock")) {
      std::size_t j = i + 1;
      if (ctx.punct_at(j, "<")) {
        j = match_angle(code, j);
        if (j == std::string::npos) continue;
      }
      if (j < code.size() && code[j].kind == TokenKind::kIdentifier &&
          (ctx.punct_at(j + 1, "(") || ctx.punct_at(j + 1, "{"))) {
        locks.push_back({code[j].text, depth, true});
      }
      continue;
    }

    // name.unlock() / name.lock() toggles the guard.
    if (t.kind == TokenKind::kIdentifier && ctx.punct_at(i + 1, ".") &&
        i + 3 < ctx.size() && ctx.punct_at(i + 3, "(")) {
      for (HeldLock& held : locks) {
        if (held.name != t.text) continue;
        if (ctx.ident_at(i + 2, "unlock")) held.active = false;
        if (ctx.ident_at(i + 2, "lock")) held.active = true;
      }
    }

    bool any_active = std::any_of(locks.begin(), locks.end(),
                                  [](const HeldLock& l) { return l.active; });
    if (!any_active) continue;

    if ((is_punct(t, ".") || is_punct(t, "->")) && ctx.ident_at(i + 1, "submit") &&
        ctx.punct_at(i + 2, "(")) {
      ctx.flag(ctx.tok(i + 1).line, "lock-across-submit",
               "ThreadPool/Service submit() while a lock guard is held: the "
               "hand-off (or its synchronously-run callback) can need the held "
               "mutex — release the guard before fanning out, as "
               "serve::Service does");
    }
    if ((is_punct(t, ".") || is_punct(t, "->")) && i + 2 < ctx.size() &&
        ctx.tok(i + 1).kind == TokenKind::kIdentifier && ctx.punct_at(i + 2, "(")) {
      const std::string& m = ctx.tok(i + 1).text;
      if (m == "wait" || m == "wait_for" || m == "wait_until") {
        // cv.wait(lk) re-releases exactly the lock it is given; any *other*
        // guard stays held across the sleep — deadlock bait under load.
        std::string arg = i + 3 < ctx.size() &&
                                  ctx.tok(i + 3).kind == TokenKind::kIdentifier
                              ? ctx.tok(i + 3).text
                              : std::string();
        bool other_held = std::any_of(
            locks.begin(), locks.end(),
            [&](const HeldLock& l) { return l.active && l.name != arg; });
        if (other_held) {
          ctx.flag(ctx.tok(i + 1).line, "lock-across-submit",
                   "'" + m +
                       "' sleeps while a lock guard other than its own lock "
                       "argument is held: the woken side may need that mutex — "
                       "never hold a second lock across a wait");
        }
      }
    }
  }
}

// --- Rule: untrusted-narrowing ----------------------------------------------

const char* kWireSources[] = {"get_u16", "get_u32", "get_u64"};
const char* kOutParamSources[] = {"parse_u64", "parse_size", "parse_u64_arg"};
/// Integer types narrower than the std::uint64_t the wire parsers produce.
const char* kNarrowTypes[] = {
    "char",     "short",    "int",      "unsigned", "int8_t",  "int16_t",
    "int32_t",  "uint8_t",  "uint16_t", "uint32_t",
};
/// Receivers whose field reads carry payload-derived values.
const char* kTaintedReceivers[] = {"spec", "frame", "crash", "job"};

bool in_list(const std::string& text, const char* const* list, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (text == list[i]) return true;
  }
  return false;
}

void check_untrusted_narrowing(RuleCtx& ctx) {
  // The untrusted-input surface: the wire/service layer and its two CLI
  // front ends. Everything else parses trusted, repo-authored inputs.
  if (!path_contains(ctx.path, "serve/") && !path_contains(ctx.path, "qload") &&
      !path_contains(ctx.path, "qcongestd")) {
    return;
  }
  const std::vector<Token>& code = ctx.code;
  std::set<std::string> tainted;  // wire-derived locals
  std::set<std::string> checked;  // bound-checked since their last taint
  std::size_t stmt_start = 0;

  auto member_key = [&](std::size_t i) -> std::string {
    // spec.nodes / frame.payload style field reads: i at the receiver.
    if (i + 2 < code.size() && code[i].kind == TokenKind::kIdentifier &&
        in_list(code[i].text, kTaintedReceivers, 4) && is_punct(code[i + 1], ".") &&
        code[i + 2].kind == TokenKind::kIdentifier) {
      return code[i].text + "." + code[i + 2].text;
    }
    return std::string();
  };
  auto flag = [&](std::size_t line, const std::string& what, const std::string& how) {
    ctx.flag(line, "untrusted-narrowing",
             "'" + what + "' originates in untrusted wire/spec input and " + how +
                 " without a preceding bound check — range-check attacker-"
                 "chosen values (<, <=, std::min/clamp) before they size, "
                 "index, or truncate anything");
  };
  // True when any token in [lo, hi) is a tainted, unchecked value; names it.
  auto tainted_in_range = [&](std::size_t lo, std::size_t hi, std::string* name) {
    for (std::size_t k = lo; k < hi && k < code.size(); ++k) {
      // A min/clamp call inside the range bounds everything it wraps
      // (handled here too because the range may be scanned before the main
      // loop reaches the call token).
      if (code[k].kind == TokenKind::kIdentifier &&
          (code[k].text == "min" || code[k].text == "clamp") &&
          k + 1 < code.size() && is_punct(code[k + 1], "(")) {
        std::size_t end = match_paren(code, k + 1);
        if (end != std::string::npos) {
          for (std::size_t m = k + 2; m < end; ++m) {
            if (code[m].kind == TokenKind::kIdentifier) checked.insert(code[m].text);
          }
          k = end - 1;
          continue;
        }
      }
      std::string key = member_key(k);
      if (!key.empty() && checked.count(key) == 0) {
        *name = key;
        return true;
      }
      if (code[k].kind == TokenKind::kIdentifier && tainted.count(code[k].text) != 0 &&
          checked.count(code[k].text) == 0) {
        *name = code[k].text;
        return true;
      }
    }
    return false;
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind == TokenKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      stmt_start = i + 1;
      continue;
    }

    if (t.kind == TokenKind::kIdentifier && ctx.punct_at(i + 1, "(")) {
      // `x = get_u32(...)`: the assigned name becomes tainted (and any
      // earlier bound check on it is stale — re-parsing re-taints).
      if (in_list(t.text, kWireSources, 3)) {
        for (std::size_t j = i; j-- > stmt_start;) {
          if (is_punct(code[j], "=") && j > stmt_start &&
              code[j - 1].kind == TokenKind::kIdentifier) {
            tainted.insert(code[j - 1].text);
            checked.erase(code[j - 1].text);
            break;
          }
        }
      }
      // `parse_u64(text, &x)`: the out-param becomes tainted.
      if (in_list(t.text, kOutParamSources, 3)) {
        std::size_t end = match_paren(code, i + 1);
        for (std::size_t j = i + 2; end != std::string::npos && j + 1 < end; ++j) {
          // Only a whole `&x` argument taints x; `&out->field` writes
          // through a struct whose field reads are tracked as member keys.
          if (is_punct(code[j], "&") && code[j + 1].kind == TokenKind::kIdentifier &&
              (is_punct(code[j - 1], "(") || is_punct(code[j - 1], ",")) &&
              (ctx.punct_at(j + 2, ")") || ctx.punct_at(j + 2, ","))) {
            tainted.insert(code[j + 1].text);
            checked.erase(code[j + 1].text);
          }
        }
      }
      // std::min / std::clamp bound their argument.
      if (t.text == "min" || t.text == "clamp") {
        std::size_t end = match_paren(code, i + 1);
        for (std::size_t j = i + 2; end != std::string::npos && j < end; ++j) {
          if (code[j].kind == TokenKind::kIdentifier) checked.insert(code[j].text);
          std::string key = member_key(j);
          if (!key.empty()) checked.insert(key);
        }
      }
    }

    // Comparison marks its identifier operands as bound-checked.
    if (t.kind == TokenKind::kPunct &&
        (t.text == "<" || t.text == ">" || t.text == "<=" || t.text == ">=")) {
      if (i > 0 && code[i - 1].kind == TokenKind::kIdentifier) {
        checked.insert(code[i - 1].text);
        if (i >= 3) {
          std::string key = member_key(i - 3);
          if (!key.empty()) checked.insert(key);
        }
      }
      if (i + 1 < code.size() && code[i + 1].kind == TokenKind::kIdentifier) {
        checked.insert(code[i + 1].text);
        std::string key = member_key(i + 1);
        if (!key.empty()) checked.insert(key);
      }
    }

    // Violation: static_cast to a narrower integer type.
    if (is_ident(t, "static_cast") && ctx.punct_at(i + 1, "<")) {
      std::size_t close = match_angle(code, i + 1);
      if (close == std::string::npos || !ctx.punct_at(close, "(")) continue;
      bool narrow = false;
      for (std::size_t j = i + 2; j + 1 < close; ++j) {
        if (code[j].kind == TokenKind::kIdentifier &&
            in_list(code[j].text, kNarrowTypes, 10)) {
          narrow = true;
        }
      }
      std::size_t args_end = match_paren(code, close);
      std::string name;
      if (narrow && args_end != std::string::npos &&
          tainted_in_range(close + 1, args_end - 1, &name)) {
        flag(t.line, name, "is narrowed by a static_cast");
      }
      continue;
    }

    // Violation: a declaration with a narrower integer type initialized
    // from a tainted value (`int t = value;`).
    if (t.kind == TokenKind::kIdentifier && in_list(t.text, kNarrowTypes, 10) &&
        i + 2 < code.size() && code[i + 1].kind == TokenKind::kIdentifier &&
        is_punct(code[i + 2], "=")) {
      std::size_t end = i + 3;
      while (end < code.size() && !is_punct(code[end], ";")) ++end;
      std::string name;
      if (tainted_in_range(i + 3, end, &name)) {
        flag(t.line, name, "initializes a narrower integer ('" + t.text + "')");
      }
    }

    // Violation: binary arithmetic on an unchecked wire value (overflow /
    // wraparound before any range check). Member reads are exempt — only
    // values straight off the frame parser count.
    if (t.kind == TokenKind::kPunct &&
        (t.text == "+" || t.text == "-" || t.text == "*")) {
      auto value_like = [&](std::size_t j) {
        if (j >= code.size()) return false;
        const Token& v = code[j];
        return v.kind == TokenKind::kIdentifier || v.kind == TokenKind::kNumber ||
               is_punct(v, ")") || is_punct(v, "]");
      };
      if (i > 0 && value_like(i - 1) && value_like(i + 1)) {  // binary, not unary
        for (std::size_t j : {i - 1, i + 1}) {
          if (code[j].kind == TokenKind::kIdentifier &&
              tainted.count(code[j].text) != 0 && checked.count(code[j].text) == 0) {
            flag(t.line, code[j].text,
                 "feeds '" + t.text + "' arithmetic (overflow/wraparound)");
          }
        }
      }
    }
  }
}

// --- Rule: hot-path-alloc ---------------------------------------------------

/// The per-word / per-amplitude functions: Engine's round loop runs these
/// tens of thousands of times per trial, Statevector::apply* once per gate
/// per 2^q amplitudes. A heap allocation here is an allocator round-trip
/// multiplied by the hottest loop in the repo — the arena/pooling work of
/// DESIGN.md §13 exists to keep these allocation-free. Cold setup (the
/// constructor, set_*, run() initialization) allocates freely; `grow_fill`
/// is the sanctioned amortized growth path and is deliberately not listed.
struct HotFn {
  const char* cls;
  const char* fn;
};
const HotFn kHotFns[] = {
    {"Engine", "deliver"},          {"Engine", "commit"},
    {"Engine", "admit"},            {"Engine", "corrupt_payload"},
    {"Engine", "run_pass_serial"},  {"Engine", "run_pass_parallel"},
    {"Engine", "scatter_inboxes"},  {"Engine", "reset_delivery_buffers"},
    {"Statevector", "apply"},       {"Statevector", "apply_controlled"},
    {"Statevector", "cnot"},        {"Statevector", "cz"},
    {"Statevector", "ccx"},         {"Statevector", "swap_qubits"},
    {"Statevector", "h_all"},
};

void check_hot_path_alloc(RuleCtx& ctx) {
  const bool engine_tu = path_contains(ctx.path, "net/engine");
  const bool statevector_tu = path_contains(ctx.path, "quantum/statevector");
  const bool kernels_tu = path_contains(ctx.path, "quantum/kernels");
  if (!engine_tu && !statevector_tu && !kernels_tu) return;
  const std::vector<Token>& code = ctx.code;

  // Receivers whose capacity is managed somewhere in this TU: a reserve /
  // resize / assign anywhere means the container's push_back in steady
  // state is a bump, not an allocation (the recycle-across-passes pattern:
  // capacity survives clear()).
  std::set<std::string> reserved;
  for (std::size_t i = 0; i + 3 < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    if (!(is_punct(code[i + 1], ".") || is_punct(code[i + 1], "->"))) continue;
    if ((ctx.ident_at(i + 2, "reserve") || ctx.ident_at(i + 2, "resize") ||
         ctx.ident_at(i + 2, "assign")) &&
        ctx.punct_at(i + 3, "(")) {
      reserved.insert(code[i].text);
    }
  }

  // Hot token ranges: the whole file for the kernel TUs (every function
  // there IS the inner loop), else the bodies of the kHotFns methods.
  std::vector<std::pair<std::size_t, std::size_t>> hot;
  if (kernels_tu) {
    hot.emplace_back(0, code.size());
  } else {
    for (std::size_t i = 0; i + 3 < code.size(); ++i) {
      if (code[i].kind != TokenKind::kIdentifier || !is_punct(code[i + 1], "::") ||
          code[i + 2].kind != TokenKind::kIdentifier || !is_punct(code[i + 3], "(")) {
        continue;
      }
      bool is_hot = false;
      for (const HotFn& fn : kHotFns) {
        if (code[i].text == fn.cls && code[i + 2].text == fn.fn) is_hot = true;
      }
      if (!is_hot) continue;
      std::size_t after = match_paren(code, i + 3);
      if (after == std::string::npos) continue;
      // Skip trailing qualifiers; a ';' means declaration, not definition.
      std::size_t open = after;
      while (open < code.size() && !is_punct(code[open], "{") &&
             !is_punct(code[open], ";")) {
        ++open;
      }
      if (open >= code.size() || !is_punct(code[open], "{")) continue;
      int depth = 0;
      std::size_t close = open;
      for (; close < code.size(); ++close) {
        if (is_punct(code[close], "{")) ++depth;
        if (is_punct(code[close], "}") && --depth == 0) break;
      }
      hot.emplace_back(open + 1, close);
    }
  }

  auto flag = [&](std::size_t line, const std::string& what) {
    ctx.flag(line, "hot-path-alloc",
             what + " in a per-word/per-amplitude hot path (Engine round "
                   "loop, Statevector::apply*, kernels): an allocator "
                   "round-trip multiplied by the hottest loop in the repo — "
                   "use the pass arena / pooled buffers (DESIGN.md §13), "
                   "reserve up front, or qlint-allow a genuinely cold branch "
                   "with a reason");
  };
  for (const auto& [lo, hi] : hot) {
    for (std::size_t i = lo; i < hi; ++i) {
      const Token& t = code[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "new") {
        // Placement new into arena storage is the sanctioned spelling and
        // starts with '(' after `new`.
        if (!ctx.punct_at(i + 1, "(")) flag(t.line, "'new'");
      } else if ((t.text == "push_back" || t.text == "emplace_back") &&
                 i >= 2 && ctx.punct_at(i + 1, "(") &&
                 (is_punct(code[i - 1], ".") || is_punct(code[i - 1], "->"))) {
        const Token& recv = code[i - 2];
        if (recv.kind == TokenKind::kIdentifier &&
            reserved.count(recv.text) == 0) {
          flag(t.line, "'" + recv.text + "." + t.text +
                           "' on a vector this TU never reserves");
        }
      } else if (t.text == "function" && ctx.punct_at(i + 1, "<")) {
        flag(t.line, "'std::function' construction (type-erased callable "
                     "heap-allocates its target)");
      } else if ((t.text == "make_unique" || t.text == "make_shared" ||
                  t.text == "malloc") &&
                 (ctx.punct_at(i + 1, "(") || ctx.punct_at(i + 1, "<"))) {
        flag(t.line, "'" + t.text + "'");
      }
    }
  }
}

// --- Rule: catch-all-swallow ------------------------------------------------

void check_catch_all_swallow(RuleCtx& ctx) {
  const std::vector<Token>& code = ctx.code;
  for (std::size_t i = 0; i + 4 < code.size(); ++i) {
    if (!(is_ident(code[i], "catch") && is_punct(code[i + 1], "(") &&
          is_punct(code[i + 2], "...") && is_punct(code[i + 3], ")") &&
          is_punct(code[i + 4], "{"))) {
      continue;
    }
    int depth = 1;
    bool handled = false;
    std::size_t j = i + 5;
    for (; j < code.size() && depth > 0; ++j) {
      const Token& t = code[j];
      if (is_punct(t, "{")) ++depth;
      if (is_punct(t, "}")) --depth;
      if (t.kind != TokenKind::kIdentifier) continue;
      // Rethrowing, capturing the exception, or producing any structured /
      // logged error all count as handling; only a silent swallow is flagged.
      if (t.text == "throw" || t.text == "rethrow_exception" ||
          t.text == "current_exception" || t.text == "set_label" ||
          t.text == "set_outcome" || t.text == "abort" || t.text == "exit" ||
          t.text == "_Exit" || t.text == "terminate" || t.text == "perror" ||
          t.text == "fprintf" || t.text == "printf" || t.text == "fputs" ||
          t.text == "cerr" || t.text == "clog" || t.text == "FAIL" ||
          t.text == "ADD_FAILURE" ||
          t.text.find("error") != std::string::npos ||
          t.text.find("Error") != std::string::npos ||
          t.text.find("fail") != std::string::npos) {
        handled = true;
      }
    }
    if (!handled) {
      ctx.flag(code[i].line, "catch-all-swallow",
               "catch (...) that neither rethrows nor produces a structured "
               "error report: the failure vanishes from every ledger — "
               "rethrow, convert to an error report/log, or mark a designed "
               "isolation boundary with qlint-allow and a reason");
    }
  }
}

// --- Rule: unchecked-io-result ----------------------------------------------

void check_unchecked_io_result(RuleCtx& ctx) {
  // The persistence paths: the journal/cache files that promise durability
  // and the reactor sockets. A write()/fsync()/rename() whose result is
  // dropped turns "durable" into "probably durable" — ENOSPC, EIO, and
  // disk-full all report through exactly the return value being ignored.
  if (!path_contains(ctx.path, "src/serve") &&
      !path_contains(ctx.path, "src/cache")) {
    return;
  }
  static const std::set<std::string> kCalls = {
      "write", "pwrite", "fsync", "fdatasync", "rename", "ftruncate"};
  const std::vector<Token>& code = ctx.code;
  auto at_statement_start = [&](std::size_t s) {
    if (s == 0) return true;
    const Token& prev = code[s - 1];
    return is_punct(prev, ";") || is_punct(prev, "{") || is_punct(prev, "}");
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::kIdentifier || kCalls.count(t.text) == 0) continue;
    if (!ctx.punct_at(i + 1, "(")) continue;
    // Member calls (stream.write) and named-namespace calls (fs::rename,
    // which reports through an error_code or throws) are out of scope;
    // only the POSIX spellings `call(...)` and `::call(...)` are IO-result
    // carriers here.
    std::size_t s = i;
    if (i >= 1 && is_punct(code[i - 1], "::")) {
      if (i >= 2 && code[i - 2].kind == TokenKind::kIdentifier) continue;
      s = i - 1;
    } else if (i >= 1 && (is_punct(code[i - 1], ".") || is_punct(code[i - 1], "->"))) {
      continue;
    }
    bool bare = at_statement_start(s);
    // `(void)call(...)` is the same silent discard with extra ceremony; an
    // intentional drop must say why via qlint-allow instead.
    bool void_cast = s >= 3 && is_punct(code[s - 3], "(") &&
                     is_ident(code[s - 2], "void") && is_punct(code[s - 1], ")") &&
                     at_statement_start(s - 3);
    if (!bare && !void_cast) continue;
    ctx.flag(t.line, "unchecked-io-result",
             "result of '" + t.text +
                 "()' ignored in a persistence path: ENOSPC/EIO report "
                 "through this return value — check it and degrade "
                 "explicitly (journal-style), or qlint-allow with a reason");
  }
}

}  // namespace

// --- Public API -------------------------------------------------------------

const std::vector<RuleInfo>& rule_infos() {
  static const std::vector<RuleInfo> kRules = {
      {"banned-random",
       "rand()/srand()/std::random_device/time(NULL) outside src/util — "
       "randomness must flow through the seeded util::Rng"},
      {"raw-thread",
       "std::thread/std::jthread/std::async/.detach() outside "
       "src/util/thread_pool — concurrency goes through util::ThreadPool"},
      {"unordered-iter",
       "iteration over std::unordered_{map,set}: visit order is "
       "implementation-defined (protocol nondeterminism)"},
      {"float-equal",
       "==/!= against a float literal in src/quantum, src/query"},
      {"runresult-discard",
       "framework phase called without accumulating its RunResult cost"},
      {"unsnapshotted-state",
       "recoverable NodeProgram member missing from snapshot()/restore()"},
      {"reactor-blocking-call",
       "sleep/wait/join/blocking stdio in the poll() reactor translation "
       "units — one blocking call stalls every connection"},
      {"lock-across-submit",
       "pool/service submit() or a foreign-lock condition wait inside a "
       "lock guard scope — deadlock bait under load"},
      {"untrusted-narrowing",
       "wire/spec-derived value narrowed or used in arithmetic before any "
       "bound check"},
      {"hot-path-alloc",
       "heap allocation (new, unreserved push_back, std::function) in the "
       "Engine round loop, Statevector::apply*, or the SIMD kernels"},
      {"catch-all-swallow",
       "catch (...) that neither rethrows nor produces a structured error"},
      {"unchecked-io-result",
       "write/fsync/rename/ftruncate result ignored in the src/serve or "
       "src/cache persistence paths"},
  };
  return kRules;
}

std::vector<std::string> collect_unordered_names(const std::string& content) {
  return collect_unordered_names_from(code_tokens(content));
}

std::vector<std::string> collect_includes(const std::string& content) {
  std::vector<std::string> includes;
  for (const Token& t : tokenize(content)) {
    if (t.kind != TokenKind::kDirective) continue;
    std::size_t at = t.text.find("include");
    if (at == std::string::npos) continue;
    std::size_t open = t.text.find('"', at);
    if (open == std::string::npos) continue;
    std::size_t close = t.text.find('"', open + 1);
    if (close == std::string::npos) continue;
    includes.push_back(t.text.substr(open + 1, close - open - 1));
  }
  return includes;
}

void SymbolIndex::add_file(const std::string& path, const std::string& content) {
  Entry entry;
  entry.names = collect_unordered_names(content);
  entry.includes = collect_includes(content);
  files_[path] = std::move(entry);
}

const std::string* SymbolIndex::resolve(const std::string& include) const {
  std::string suffix = "/" + include;
  for (const auto& [path, entry] : files_) {
    (void)entry;
    if (path == include) return &path;
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return &path;
    }
  }
  return nullptr;
}

std::vector<std::string> SymbolIndex::unordered_names_for(
    const std::string& path) const {
  std::vector<std::string> names;
  std::set<std::string> visited;
  std::vector<std::string> frontier = {path};
  while (!frontier.empty()) {
    std::string current = std::move(frontier.back());
    frontier.pop_back();
    if (!visited.insert(current).second) continue;
    auto it = files_.find(current);
    if (it == files_.end()) continue;
    names.insert(names.end(), it->second.names.begin(), it->second.names.end());
    for (const std::string& include : it->second.includes) {
      if (const std::string* resolved = resolve(include)) frontier.push_back(*resolved);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<LintDiagnostic> lint_source(
    const std::string& path, const std::string& content, const LintConfig& config,
    const std::vector<std::string>& extra_unordered_names) {
  std::vector<Token> code = code_tokens(content);
  std::vector<std::string> raw_lines = split_lines(content);

  std::vector<std::string> names = collect_unordered_names_from(code);
  names.insert(names.end(), extra_unordered_names.begin(),
               extra_unordered_names.end());
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());

  std::vector<LintDiagnostic> candidates;
  RuleCtx ctx{path, code, raw_lines, candidates};
  check_banned_random(ctx);
  check_raw_thread(ctx);
  check_unordered_iter(ctx, names);
  check_float_equal(ctx);
  check_runresult_discard(ctx);
  check_unsnapshotted_state(ctx);
  check_reactor_blocking_call(ctx);
  check_lock_across_submit(ctx);
  check_untrusted_narrowing(ctx);
  check_hot_path_alloc(ctx);
  check_catch_all_swallow(ctx);
  check_unchecked_io_result(ctx);

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const LintDiagnostic& a, const LintDiagnostic& b) {
                     return a.line < b.line;
                   });
  // One diagnostic per (rule, line) is enough.
  std::set<std::pair<std::string, std::size_t>> seen;
  std::vector<LintDiagnostic> diagnostics;
  for (LintDiagnostic& diag : candidates) {
    if (!seen.insert({diag.rule, diag.line}).second) continue;
    InlineAllow allow = diag.line >= 1 && diag.line <= raw_lines.size()
                            ? inline_allow(raw_lines[diag.line - 1], diag.rule)
                            : InlineAllow::kNone;
    if (allow == InlineAllow::kSuppressed) continue;
    if (config_allowed(config, diag)) continue;
    if (allow == InlineAllow::kMissingReason) {
      diag.message +=
          " [a qlint-allow without ': reason' is inert — suppressions must "
          "say why]";
    }
    diagnostics.push_back(std::move(diag));
  }
  return diagnostics;
}

LintResult lint_trees(const std::vector<std::string>& roots,
                      const LintConfig& config) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    if (!fs::exists(root)) {
      throw std::invalid_argument("lint_trees: no such directory: " + root);
    }
    for (auto it = fs::recursive_directory_iterator(root);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory()) {
        std::string dir = it->path().filename().string();
        if (dir == "build" || dir == ".git") it.disable_recursion_pending();
        continue;
      }
      std::string ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".hpp") files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  auto read_file = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };

  // Pass 1: the cross-TU symbol index over every file of every root, so a
  // tests/ or tools/ TU sees the unordered members of included src/ headers.
  SymbolIndex index;
  std::vector<std::pair<std::string, std::string>> contents;
  contents.reserve(files.size());
  for (const fs::path& file : files) {
    contents.emplace_back(file.generic_string(), read_file(file));
    index.add_file(contents.back().first, contents.back().second);
  }

  // Pass 2: lint with each file's resolved view of the index.
  LintResult result;
  for (const auto& [path, content] : contents) {
    auto diags = lint_source(path, content, config, index.unordered_names_for(path));
    result.diagnostics.insert(result.diagnostics.end(),
                              std::make_move_iterator(diags.begin()),
                              std::make_move_iterator(diags.end()));
    ++result.files_scanned;
  }
  return result;
}

LintResult lint_tree(const std::string& root, const LintConfig& config) {
  return lint_trees({root}, config);
}

LintConfig load_allowlist(const std::string& path) {
  LintConfig config;
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("load_allowlist: cannot read " + path);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;  // whole-line comment
    std::size_t hash = line.find('#', first);
    std::string entry = line.substr(first, hash == std::string::npos
                                               ? std::string::npos
                                               : hash - first);
    std::size_t last = entry.find_last_not_of(" \t\r");
    entry.erase(last == std::string::npos ? 0 : last + 1);
    std::string reason =
        hash == std::string::npos ? std::string() : line.substr(hash + 1);
    std::size_t reason_at = reason.find_first_not_of(" \t");
    if (reason_at == std::string::npos) {
      throw std::invalid_argument(
          path + ":" + std::to_string(line_no) +
          ": allowlist entry missing its trailing '# reason' — every "
          "suppression is a debt note and must say why it exists");
    }
    if (!entry.empty()) config.allow.push_back(entry);
  }
  return config;
}

}  // namespace qcongest::check
