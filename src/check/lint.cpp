#include "src/check/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qcongest::check {

namespace {

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Whole-word occurrence of `word` in `line` starting at or after `pos`;
/// npos if none.
std::size_t find_word(const std::string& line, const std::string& word,
                      std::size_t pos = 0) {
  while (true) {
    std::size_t at = line.find(word, pos);
    if (at == std::string::npos) return std::string::npos;
    bool left_ok = at == 0 || !ident_char(line[at - 1]);
    std::size_t end = at + word.size();
    bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return at;
    pos = at + 1;
  }
}

/// Strip string/char literal contents and // comments; replaces them with
/// spaces so column positions survive. `in_block_comment` carries /* */
/// state across lines.
std::string strip_noise(const std::string& line, bool& in_block_comment) {
  std::string out(line.size(), ' ');
  bool in_string = false, in_char = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_block_comment) {
      if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_comment = false;
        ++i;
      }
      continue;
    }
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (in_char) {
      if (c == '\\') {
        ++i;
      } else if (c == '\'') {
        in_char = false;
      }
      continue;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      out[i] = c;
      continue;
    }
    if (c == '\'' && i > 0 && !std::isdigit(static_cast<unsigned char>(line[i - 1]))) {
      // Digit separators (1'000'000) are not char literals.
      in_char = true;
      out[i] = c;
      continue;
    }
    out[i] = c;
  }
  return out;
}

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

/// `// qlint-allow(rule)` anywhere on the raw line suppresses `rule` there.
bool inline_allowed(const std::string& raw_line, const std::string& rule) {
  std::size_t at = raw_line.find("qlint-allow(");
  if (at == std::string::npos) return false;
  std::size_t open = at + std::string("qlint-allow(").size();
  std::size_t close = raw_line.find(')', open);
  if (close == std::string::npos) return false;
  std::string listed = raw_line.substr(open, close - open);
  std::istringstream parts(listed);
  std::string entry;
  while (std::getline(parts, entry, ',')) {
    entry.erase(std::remove_if(entry.begin(), entry.end(), ::isspace), entry.end());
    if (entry == rule || entry == "*") return true;
  }
  return false;
}

bool config_allowed(const LintConfig& config, const LintDiagnostic& diag) {
  for (const std::string& entry : config.allow) {
    std::size_t first = entry.find(':');
    if (first == std::string::npos) continue;
    std::string rule = entry.substr(0, first);
    std::string rest = entry.substr(first + 1);
    std::size_t second = rest.find(':');
    std::string path_sub = second == std::string::npos ? rest : rest.substr(0, second);
    std::string needle = second == std::string::npos ? "" : rest.substr(second + 1);
    if (rule != "*" && rule != diag.rule) continue;
    if (path_sub != "*" && diag.file.find(path_sub) == std::string::npos) continue;
    if (!needle.empty() && diag.line_text.find(needle) == std::string::npos) continue;
    return true;
  }
  return false;
}

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(content.substr(start));
      break;
    }
    lines.push_back(content.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

// --- Rule: banned-random ---------------------------------------------------

const char* kRandomTokens[] = {"std::random_device", "random_device"};

void check_banned_random(const std::string& path, const std::string& stripped,
                         std::size_t line_no, const std::string& raw,
                         std::vector<LintDiagnostic>& out) {
  // src/util is the one place allowed to touch entropy (it seeds util::Rng).
  if (path_contains(path, "src/util/") || path_contains(path, "util/rng")) return;
  auto flag = [&](const std::string& what) {
    out.push_back({path, line_no, "banned-random",
                   what + ": all randomness must flow through the seeded util::Rng "
                         "(determinism contract; see DESIGN.md)",
                   raw});
  };
  for (const char* token : kRandomTokens) {
    if (stripped.find(token) != std::string::npos) {
      flag(std::string("'") + token + "'");
      return;
    }
  }
  std::size_t at = find_word(stripped, "rand");
  if (at != std::string::npos) {
    std::size_t after = stripped.find_first_not_of(' ', at + 4);
    if (after != std::string::npos && stripped[after] == '(') {
      flag("'rand()'");
      return;
    }
  }
  if (find_word(stripped, "srand") != std::string::npos) {
    flag("'srand'");
    return;
  }
  at = find_word(stripped, "time");
  if (at != std::string::npos) {
    std::size_t open = stripped.find_first_not_of(' ', at + 4);
    if (open != std::string::npos && stripped[open] == '(') {
      std::size_t arg = stripped.find_first_not_of(' ', open + 1);
      if (arg != std::string::npos &&
          (stripped.compare(arg, 4, "NULL") == 0 ||
           stripped.compare(arg, 7, "nullptr") == 0 || stripped[arg] == '0')) {
        flag("'time(NULL)'-style seeding");
      }
    }
  }
}

// --- Rule: raw-thread ------------------------------------------------------

const char* kThreadTokens[] = {"std::thread", "std::jthread", "std::async"};

void check_raw_thread(const std::string& path, const std::string& stripped,
                      std::size_t line_no, const std::string& raw,
                      std::vector<LintDiagnostic>& out) {
  // The pool is the one blessed home for raw threads: it owns shard
  // determinism and exception propagation, so ad-hoc std::thread elsewhere
  // would bypass both.
  if (path_contains(path, "src/util/thread_pool")) return;
  auto flag = [&](const std::string& what) {
    out.push_back({path, line_no, "raw-thread",
                   what + ": concurrency must go through util::ThreadPool, which "
                         "owns shard scheduling, exception propagation, and the "
                         "determinism contract (see DESIGN.md)",
                   raw});
  };
  for (const char* token : kThreadTokens) {
    std::size_t at = stripped.find(token);
    if (at == std::string::npos) continue;
    // Whole token only: skip when the match merely prefixes a longer name
    // (an identifier continues, or a nested name like std::thread::id —
    // reading the id type does not spawn anything).
    std::size_t end = at + std::string(token).size();
    if (end < stripped.size() && ident_char(stripped[end])) continue;
    if (end + 1 < stripped.size() && stripped[end] == ':' && stripped[end + 1] == ':') {
      continue;
    }
    flag(std::string("'") + token + "'");
    return;
  }
  std::size_t at = stripped.find(".detach(");
  if (at == std::string::npos) {
    at = stripped.find("->detach(");
  }
  if (at != std::string::npos) {
    flag("'.detach()'");
  }
}

// --- Rule: unordered-iter --------------------------------------------------

void check_unordered_iter(const std::string& path, const std::string& stripped,
                          std::size_t line_no, const std::string& raw,
                          const std::vector<std::string>& names,
                          std::vector<LintDiagnostic>& out) {
  for (const std::string& name : names) {
    std::size_t at = find_word(stripped, name);
    while (at != std::string::npos) {
      // Range-for: "for (... : name" with the loop variable to the left.
      std::size_t before = at;
      while (before > 0 && stripped[before - 1] == ' ') --before;
      bool range_for = before > 0 && stripped[before - 1] == ':' &&
                       (before < 2 || stripped[before - 2] != ':') &&
                       stripped.find("for") != std::string::npos &&
                       stripped.find("for") < at;
      // Iterator walk: "name.begin(" / cbegin / rbegin.
      std::size_t after = at + name.size();
      bool begin_call = stripped.compare(after, 7, ".begin(") == 0 ||
                        stripped.compare(after, 8, ".cbegin(") == 0 ||
                        stripped.compare(after, 8, ".rbegin(") == 0;
      if (range_for || begin_call) {
        out.push_back(
            {path, line_no, "unordered-iter",
             "iteration over unordered container '" + name +
                 "': visit order is implementation-defined and will differ across "
                 "standard libraries — sort first, or use std::map/std::set/vector "
                 "before the order can reach messages, samples, or float sums",
             raw});
        return;  // one diagnostic per line is enough
      }
      at = find_word(stripped, name, at + 1);
    }
  }
}

// --- Rule: float-equal -----------------------------------------------------

bool float_literal_left(const std::string& s, std::size_t op_at) {
  std::size_t i = op_at;
  while (i > 0 && s[i - 1] == ' ') --i;
  // Walk back over a token that may be a numeric literal.
  std::size_t end = i;
  while (i > 0 && (ident_char(s[i - 1]) || s[i - 1] == '.')) --i;
  std::string token = s.substr(i, end - i);
  return token.find('.') != std::string::npos && !token.empty() &&
         std::isdigit(static_cast<unsigned char>(token[0]));
}

bool float_literal_right(const std::string& s, std::size_t after_op) {
  std::size_t i = after_op;
  while (i < s.size() && s[i] == ' ') ++i;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
  std::size_t start = i;
  while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
                          s[i] == 'e' || s[i] == 'E' || s[i] == 'f')) {
    ++i;
  }
  std::string token = s.substr(start, i - start);
  return token.find('.') != std::string::npos &&
         std::isdigit(static_cast<unsigned char>(token.empty() ? ' ' : token[0]));
}

void check_float_equal(const std::string& path, const std::string& stripped,
                       std::size_t line_no, const std::string& raw,
                       std::vector<LintDiagnostic>& out) {
  if (!path_contains(path, "quantum/") && !path_contains(path, "query/")) return;
  for (std::size_t i = 0; i + 1 < stripped.size(); ++i) {
    bool eq = stripped[i] == '=' && stripped[i + 1] == '=';
    bool ne = stripped[i] == '!' && stripped[i + 1] == '=';
    if (!eq && !ne) continue;
    if (i > 0 && (stripped[i - 1] == '=' || stripped[i - 1] == '!' ||
                  stripped[i - 1] == '<' || stripped[i - 1] == '>')) {
      continue;
    }
    if (i + 2 < stripped.size() && stripped[i + 2] == '=') continue;
    if (float_literal_left(stripped, i) || float_literal_right(stripped, i + 2)) {
      out.push_back({path, line_no, "float-equal",
                     "exact floating-point comparison against a literal in quantum "
                     "code: amplitudes carry rounding error, compare within a "
                     "tolerance (e.g. std::abs(x - y) <= 1e-9)",
                     raw});
      return;
    }
  }
}

// --- Rule: runresult-discard -----------------------------------------------

/// Framework phases whose return value carries round/word costs; discarding
/// one silently loses rounds from the accounting.
const char* kPhaseCalls[] = {
    "distribute_state",  "undistribute_state",     "distribute_state_unpipelined",
    "zero_reflection",   "amplification_iterate",  "pipelined_downcast",
    "unpipelined_downcast", "pipelined_convergecast", "elect_leader",
    "build_bfs_tree",    "multi_source_bfs",
};

void check_runresult_discard(const std::string& path, const std::string& stripped,
                             std::size_t line_no, const std::string& raw,
                             bool statement_start, std::vector<LintDiagnostic>& out) {
  if (!path_contains(path, "framework/")) return;
  // A call on a continuation line is part of an enclosing expression whose
  // value may well be consumed — only statement-leading calls discard.
  if (!statement_start) return;
  std::size_t first = stripped.find_first_not_of(' ');
  if (first == std::string::npos) return;
  std::string trimmed = stripped.substr(first);

  // True when the statement begins with `name(` or a namespace-qualified
  // `ns::...::name(` — i.e. the call's value cannot be consumed.
  auto starts_call = [&](const std::string& name) {
    std::size_t pos = 0;
    while (true) {
      std::size_t id_end = pos;
      while (id_end < trimmed.size() && ident_char(trimmed[id_end])) ++id_end;
      if (trimmed.compare(id_end, 2, "::") != 0) break;
      pos = id_end + 2;
    }
    if (trimmed.compare(pos, name.size(), name) != 0) return false;
    std::size_t after = pos + name.size();
    if (after < trimmed.size() && ident_char(trimmed[after])) return false;
    std::size_t open = trimmed.find_first_not_of(' ', after);
    return open != std::string::npos && trimmed[open] == '(';
  };

  // A bare "engine.run(...)" / "subroutine.run()" statement discards the
  // RunResult as well.
  bool method_run = false;
  std::size_t run_at = find_word(trimmed, "run");
  if (run_at != std::string::npos && run_at > 0 &&
      (trimmed[run_at - 1] == '.' ||
       (run_at > 1 && trimmed[run_at - 2] == '-' && trimmed[run_at - 1] == '>'))) {
    std::size_t head_end = run_at - (trimmed[run_at - 1] == '.' ? 1 : 2);
    bool head_is_ident = head_end > 0 && ident_char(trimmed[head_end - 1]);
    std::size_t open = run_at + 3;
    bool calls = open < trimmed.size() && trimmed[open] == '(';
    // Only a *statement-leading* receiver counts as a discard.
    std::size_t head_start = head_end;
    while (head_start > 0 && ident_char(trimmed[head_start - 1])) --head_start;
    method_run = head_is_ident && calls && head_start == 0;
  }

  bool discarded_phase = false;
  std::string which;
  for (const char* name : kPhaseCalls) {
    if (starts_call(name)) {
      discarded_phase = true;
      which = name;
      break;
    }
  }
  if (method_run) {
    discarded_phase = true;
    which = "run";
  }
  if (!discarded_phase) return;
  // Assignments / returns / accumulations never reach here because the line
  // would not *start* with the call; "(void)" casts do not either.
  out.push_back({path, line_no, "runresult-discard",
                 "the RunResult (cost) of '" + which +
                     "' is discarded: rounds vanish from the complexity "
                     "accounting — accumulate it with += into the phase cost",
                 raw});
}

// --- Rule: unsnapshotted-state ---------------------------------------------

/// True when `line` carries a base-clause mention of NodeProgram — i.e. the
/// class on this (or the enclosing) header line derives from it: the
/// occurrence, after unwinding namespace qualifiers, is preceded by an
/// access specifier, a lone ':', or a ',' of the base list. Plain uses
/// (`std::unique_ptr<NodeProgram>`) do not match.
bool derives_node_program(const std::string& line) {
  std::size_t at = find_word(line, "NodeProgram");
  while (at != std::string::npos) {
    std::size_t i = at;
    while (i >= 2 && line[i - 1] == ':' && line[i - 2] == ':') {
      i -= 2;
      while (i > 0 && ident_char(line[i - 1])) --i;
    }
    while (i > 0 && line[i - 1] == ' ') --i;
    auto keyword_before = [&](const std::string& kw) {
      return i >= kw.size() && line.compare(i - kw.size(), kw.size(), kw) == 0 &&
             (i == kw.size() || !ident_char(line[i - kw.size() - 1]));
    };
    if (keyword_before("public") || keyword_before("protected") ||
        keyword_before("private")) {
      return true;
    }
    if (i > 0 && (line[i - 1] == ',' ||
                  (line[i - 1] == ':' && (i < 2 || line[i - 2] != ':')))) {
      return true;
    }
    at = find_word(line, "NodeProgram", at + 1);
  }
  return false;
}

/// Identifiers with the member naming convention (trailing '_') on a
/// stripped declaration line.
std::vector<std::string> trailing_underscore_idents(const std::string& line) {
  std::vector<std::string> names;
  std::size_t i = 0;
  while (i < line.size()) {
    if (!ident_char(line[i])) {
      ++i;
      continue;
    }
    std::size_t start = i;
    while (i < line.size() && ident_char(line[i])) ++i;
    if (line[i - 1] == '_' && i - start > 1) names.push_back(line.substr(start, i - start));
  }
  return names;
}

/// Whole-file pass: inside every class deriving from NodeProgram that
/// overrides snapshot() — the act that declares the program recoverable —
/// each mutable data member (trailing underscore, non-pointer, non-const,
/// non-static) must appear by name in the snapshot() or restore() body, or
/// an amnesia restart silently resets it to its constructed value.
void check_unsnapshotted_state(const std::string& path,
                               const std::vector<std::string>& stripped_lines,
                               const std::vector<std::string>& raw_lines,
                               std::vector<LintDiagnostic>& out) {
  struct Member {
    std::size_t line = 0;  // 1-based
    std::string name;
  };
  bool in_class = false;
  bool body_open = false;
  int base_depth = 0;       // brace depth just before the class's '{'
  bool capturing = false;   // inside a snapshot()/restore() body
  bool overrides_snapshot = false;
  std::string coverage;     // accumulated snapshot()/restore() text
  std::vector<Member> members;

  int depth = 0;
  for (std::size_t idx = 0; idx < stripped_lines.size(); ++idx) {
    const std::string& line = stripped_lines[idx];
    int opens = static_cast<int>(std::count(line.begin(), line.end(), '{'));
    int closes = static_cast<int>(std::count(line.begin(), line.end(), '}'));

    if (!in_class && derives_node_program(line) &&
        (find_word(line, "class") != std::string::npos ||
         find_word(line, "struct") != std::string::npos ||
         (idx > 0 && (find_word(stripped_lines[idx - 1], "class") != std::string::npos ||
                      find_word(stripped_lines[idx - 1], "struct") != std::string::npos)))) {
      in_class = true;
      body_open = false;
      base_depth = depth;
      capturing = false;
      overrides_snapshot = false;
      coverage.clear();
      members.clear();
    }

    if (in_class) {
      if (capturing) {
        coverage += line;
        coverage += '\n';
      } else if (body_open && depth == base_depth + 1) {
        // Method-body entry: `bool snapshot(...)` / `bool restore(...)`
        // defined at member depth.
        std::size_t snap = find_word(line, "snapshot");
        std::size_t rest = find_word(line, "restore");
        bool is_snapshot = snap != std::string::npos &&
                           line.find('(', snap) != std::string::npos;
        bool is_restore = rest != std::string::npos &&
                          line.find('(', rest) != std::string::npos;
        if (is_snapshot || is_restore) {
          if (is_snapshot) overrides_snapshot = true;
          capturing = true;
          coverage += line;
          coverage += '\n';
        } else {
          // Member declaration: plain `Type name_ = init;` — no braces, no
          // calls, not a type alias / static / pointer / const.
          std::size_t last = line.find_last_not_of(' ');
          bool decl = last != std::string::npos && line[last] == ';' &&
                      line.find('(') == std::string::npos &&
                      line.find('{') == std::string::npos &&
                      line.find('*') == std::string::npos &&
                      find_word(line, "const") == std::string::npos &&
                      find_word(line, "static") == std::string::npos &&
                      find_word(line, "using") == std::string::npos;
          if (decl) {
            for (const std::string& name : trailing_underscore_idents(line)) {
              members.push_back({idx + 1, name});
            }
          }
        }
      }
    }

    depth += opens - closes;

    if (in_class) {
      if (depth > base_depth) body_open = true;
      if (capturing && depth <= base_depth + 1) capturing = false;
      if (body_open && depth <= base_depth) {
        // Class closed: recoverable programs must cover every member — except
        // forwarding adapters, whose snapshot() delegates to a wrapped
        // program (`inner_->snapshot(...)`): their own members are transport
        // state that deliberately survives an amnesia wipe (the NIC analogy
        // of DESIGN.md "Recovery model"), not node state.
        bool delegates = coverage.find("->snapshot(") != std::string::npos;
        if (overrides_snapshot && !delegates) {
          for (const Member& m : members) {
            if (find_word(coverage, m.name) != std::string::npos) continue;
            out.push_back(
                {path, m.line, "unsnapshotted-state",
                 "member '" + m.name +
                     "' of a recoverable NodeProgram (it overrides snapshot) is "
                     "serialized by neither snapshot() nor restore(): after an "
                     "amnesia restart it reverts to its constructed value and the "
                     "node replays from a state that never existed — cover it, or "
                     "mark deliberately reconstructed config with qlint-allow",
                 raw_lines[m.line - 1]});
          }
        }
        in_class = false;
      }
    }
  }
}

}  // namespace

std::vector<std::string> collect_unordered_names(const std::string& content) {
  std::vector<std::string> names;
  bool in_block_comment = false;
  for (const std::string& raw : split_lines(content)) {
    std::string line = strip_noise(raw, in_block_comment);
    if (line.find("#include") != std::string::npos) continue;
    std::size_t decl = line.find("unordered_map<");
    if (decl == std::string::npos) decl = line.find("unordered_set<");
    if (decl == std::string::npos) continue;
    // The declared identifier follows the last '>' of the type on this line.
    std::size_t close = line.rfind('>');
    if (close == std::string::npos || close < decl) continue;
    std::size_t start = close + 1;
    if (start < line.size() && line[start] == '&') ++start;  // reference params
    while (start < line.size() && line[start] == ' ') ++start;
    std::size_t end = start;
    while (end < line.size() && ident_char(line[end])) ++end;
    if (end > start) names.push_back(line.substr(start, end - start));
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<LintDiagnostic> lint_source(
    const std::string& path, const std::string& content, const LintConfig& config,
    const std::vector<std::string>& extra_unordered_names) {
  std::vector<std::string> names = collect_unordered_names(content);
  names.insert(names.end(), extra_unordered_names.begin(), extra_unordered_names.end());
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());

  std::vector<std::string> raw_lines = split_lines(content);
  std::vector<std::string> stripped_lines;
  stripped_lines.reserve(raw_lines.size());
  bool in_block_comment = false;
  for (const std::string& raw : raw_lines) {
    stripped_lines.push_back(strip_noise(raw, in_block_comment));
  }

  std::vector<LintDiagnostic> candidates;
  char prev_end = ';';  // start of file begins a statement
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& raw = raw_lines[i];
    const std::string& stripped = stripped_lines[i];
    std::size_t line_no = i + 1;
    bool statement_start =
        prev_end == ';' || prev_end == '{' || prev_end == '}' || prev_end == ':';
    std::size_t last = stripped.find_last_not_of(' ');
    if (last != std::string::npos) prev_end = stripped[last];
    check_banned_random(path, stripped, line_no, raw, candidates);
    check_raw_thread(path, stripped, line_no, raw, candidates);
    check_unordered_iter(path, stripped, line_no, raw, names, candidates);
    check_float_equal(path, stripped, line_no, raw, candidates);
    check_runresult_discard(path, stripped, line_no, raw, statement_start, candidates);
  }
  check_unsnapshotted_state(path, stripped_lines, raw_lines, candidates);
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const LintDiagnostic& a, const LintDiagnostic& b) {
                     return a.line < b.line;
                   });

  std::vector<LintDiagnostic> diagnostics;
  for (LintDiagnostic& diag : candidates) {
    if (inline_allowed(raw_lines[diag.line - 1], diag.rule)) continue;
    if (config_allowed(config, diag)) continue;
    diagnostics.push_back(std::move(diag));
  }
  return diagnostics;
}

LintResult lint_tree(const std::string& root, const LintConfig& config) {
  namespace fs = std::filesystem;
  if (!fs::exists(root)) {
    throw std::invalid_argument("lint_tree: no such directory: " + root);
  }
  std::vector<fs::path> files;
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory()) {
      std::string dir = it->path().filename().string();
      if (dir == "build" || dir == ".git") it.disable_recursion_pending();
      continue;
    }
    std::string ext = it->path().extension().string();
    if (ext == ".cpp" || ext == ".hpp") files.push_back(it->path());
  }
  std::sort(files.begin(), files.end());

  auto read_file = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };

  LintResult result;
  for (const fs::path& file : files) {
    std::string content = read_file(file);
    std::vector<std::string> extra;
    if (file.extension() == ".cpp") {
      fs::path header = file;
      header.replace_extension(".hpp");
      if (fs::exists(header)) extra = collect_unordered_names(read_file(header));
    }
    auto diags = lint_source(file.generic_string(), content, config, extra);
    result.diagnostics.insert(result.diagnostics.end(),
                              std::make_move_iterator(diags.begin()),
                              std::make_move_iterator(diags.end()));
    ++result.files_scanned;
  }
  return result;
}

LintConfig load_allowlist(const std::string& path) {
  LintConfig config;
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("load_allowlist: cannot read " + path);
  std::string line;
  while (std::getline(in, line)) {
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line.erase(0, line.find_first_not_of(" \t"));
    std::size_t last = line.find_last_not_of(" \t\r");
    if (last == std::string::npos) continue;
    line.erase(last + 1);
    config.allow.push_back(line);
  }
  return config;
}

}  // namespace qcongest::check
