#pragma once

#include <cstddef>
#include <string>

#include "src/net/graph.hpp"

namespace qcongest::check {

/// The invariants the model-conformance verifier enforces. Each one guards a
/// clause of the CONGEST model (or of the quantum simulation contract) that
/// the paper's round-complexity claims silently rely on; see DESIGN.md
/// "Invariants & static analysis" for the invariant -> paper-clause map.
enum class InvariantKind {
  /// <= B words per directed edge per round (the CONGEST(B) rule).
  kBandwidthPerRound,
  /// Per directed edge, total words (retransmissions included — they are
  /// sends) <= B x elapsed rounds.
  kBandwidthAggregate,
  /// Every admitted word is delivered or dropped, exactly once:
  /// sent = delivered + dropped, and inbox insertions = delivered +
  /// duplicated. Nothing is silently created or destroyed.
  kConservation,
  /// The engine's RunResult counters must equal the observer's independent
  /// tally (messages, drops, corruptions, duplicates, retransmissions,
  /// max_edge_words).
  kCounterMismatch,
  /// The reported round count is the last pass that sent anything, and a
  /// completed run really went quiet (no sends after the reported round).
  kQuiescence,
  /// A statevector's norm drifted more than the tolerance from 1.
  kStateNorm,
  /// A circuit is not unitary (checked by explicit matrix reconstruction at
  /// small scale).
  kCircuitUnitarity,
  /// A model rule the engine itself enforced by throwing CongestViolation
  /// (over-budget send, non-neighbor send), recorded with its provenance.
  kModelRule,
};

const char* invariant_name(InvariantKind kind);

/// One observed invariant violation, with provenance. `round`/`from`/`to`
/// are meaningful only when `has_round`/`has_edge` say so (norm checks, for
/// example, have neither).
struct Violation {
  InvariantKind kind = InvariantKind::kModelRule;
  bool has_round = false;
  std::size_t round = 0;
  bool has_edge = false;
  net::NodeId from = 0;
  net::NodeId to = 0;
  std::string detail;

  /// "[bandwidth-per-round] round 3, edge 1 -> 2: <detail>"
  std::string to_string() const;
};

}  // namespace qcongest::check
