#pragma once

#include <optional>
#include <string>

#include "src/check/invariant.hpp"

namespace qcongest::quantum {
class Statevector;
class SparseStatevector;
class Circuit;
}  // namespace qcongest::quantum

namespace qcongest::check {

/// Quantum-layer invariants of the simulation contract (DESIGN.md §1): every
/// public mutating operation leaves a statevector normalized, and every
/// circuit the framework applies is unitary. Each check returns the
/// violation (with a human-readable `where` provenance string) or nullopt.

/// |norm - 1| <= tol. The contract tolerance is 1e-9.
std::optional<Violation> check_state_norm(const quantum::Statevector& state,
                                          const std::string& where, double tol = 1e-9);
std::optional<Violation> check_state_norm(const quantum::SparseStatevector& state,
                                          const std::string& where, double tol = 1e-9);

/// Reconstructs the circuit's full matrix by simulating every basis state
/// and checks U^dagger U = I entry-wise within tol. Exponential in qubits by
/// construction — refuses (throws std::invalid_argument) above
/// kMaxUnitarityQubits so it cannot be misused at scale.
inline constexpr unsigned kMaxUnitarityQubits = 10;
std::optional<Violation> check_circuit_unitary(const quantum::Circuit& circuit,
                                               const std::string& where,
                                               double tol = 1e-9);

}  // namespace qcongest::check
