#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/check/invariant.hpp"
#include "src/net/engine.hpp"
#include "src/net/violation.hpp"

namespace qcongest::quantum {
class Statevector;
class SparseStatevector;
class Circuit;
}  // namespace qcongest::quantum

namespace qcongest::check {

/// Model-conformance verifier: an EngineObserver that re-derives the
/// engine's accounting independently from the raw send/delivery stream and
/// checks, every round and at every run end, that the CONGEST rules held —
/// per-edge bandwidth, word conservation through the fault lottery,
/// counter honesty, and quiescence consistency. Violations are collected
/// with full provenance (round, edge, numbers) instead of aborting the run;
/// `ok()` / `report()` give the verdict.
///
/// The same object also fronts the quantum-layer checks (state norm,
/// circuit unitarity): call check_state / check_circuit at the points a
/// protocol materializes quantum state and the outcomes land in the same
/// violation list.
class Verifier final : public net::EngineObserver {
 public:
  Verifier() = default;

  /// Start observing `engine` (replaces any previous attachment). The
  /// verifier must outlive every run of the engine.
  void attach(net::Engine& engine);
  void detach();

  // --- EngineObserver -----------------------------------------------------
  void on_run_begin(const net::Engine& engine) override;
  void on_send(std::size_t round, net::NodeId from, net::NodeId to,
               const net::Word& word, std::size_t edge_words) override;
  void on_delivery(std::size_t round, net::NodeId from, net::NodeId to,
                   net::DeliveryFate fate, bool corrupted, bool duplicated) override;
  void on_retransmission(std::size_t round) override;
  void on_round_end(std::size_t round) override;
  void on_run_end(const net::RunResult& stats) override;

  /// Record a model rule the engine enforced by throwing (bandwidth /
  /// non-neighbor violations carry their provenance in the exception).
  void note(const net::CongestViolation& violation);
  void note(Violation violation);

  /// The current run exited by exception: drop its half-finished tallies so
  /// the end-of-run cross-checks don't fire spuriously on the next run.
  void abandon_run();

  // --- Quantum-layer invariants -------------------------------------------
  /// Norm within `tol` of 1 (1e-9 per the simulation contract).
  void check_state(const quantum::Statevector& state, const std::string& where,
                   double tol = 1e-9);
  void check_state(const quantum::SparseStatevector& state, const std::string& where,
                   double tol = 1e-9);
  /// Reconstructs the circuit's matrix by simulation (small scale,
  /// <= 10 qubits) and checks unitarity column-by-column.
  void check_circuit(const quantum::Circuit& circuit, const std::string& where,
                     double tol = 1e-9);

  // --- Verdict ------------------------------------------------------------
  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  std::size_t runs_verified() const { return runs_verified_; }
  /// Human-readable multi-line report ("all invariants held over N runs" or
  /// one provenance line per violation).
  std::string report() const;
  /// Forget all recorded violations and run statistics (per-run state too).
  void reset();

 private:
  void bind_graph(const net::Graph& graph);
  std::size_t slot(net::NodeId from, net::NodeId to) const;

  const net::Graph* graph_ = nullptr;
  std::size_t bandwidth_ = 0;
  std::vector<std::size_t> slot_offset_;

  // Per-run tallies, reset by on_run_begin.
  bool run_active_ = false;
  std::vector<std::size_t> edge_words_round_;
  std::vector<std::size_t> edge_words_total_;
  std::size_t sends_ = 0;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;
  std::size_t corrupted_ = 0;
  std::size_t duplicated_ = 0;
  std::size_t retransmissions_ = 0;
  std::size_t max_edge_words_ = 0;
  std::size_t passes_ = 0;
  bool any_send_ = false;
  std::size_t last_send_round_ = 0;

  std::vector<Violation> violations_;
  std::size_t runs_verified_ = 0;
};

/// An Engine with the conformance verifier permanently attached. Drop-in
/// where a protocol would build its own Engine: configure through engine(),
/// run through run() — engine-thrown CongestViolations are caught, recorded
/// in the verifier's report with provenance, and surfaced as an incomplete
/// RunResult instead of unwinding the caller.
class VerifiedEngine {
 public:
  explicit VerifiedEngine(const net::Graph& graph, std::size_t bandwidth_words = 1,
                          std::uint64_t seed = 1)
      : engine_(graph, bandwidth_words, seed) {
    verifier_.attach(engine_);
  }

  net::Engine& engine() { return engine_; }
  const net::Engine& engine() const { return engine_; }
  Verifier& verifier() { return verifier_; }
  const Verifier& verifier() const { return verifier_; }

  net::RunResult run(std::span<const std::unique_ptr<net::NodeProgram>> programs,
                     std::size_t max_rounds);

 private:
  net::Engine engine_;
  Verifier verifier_;
};

}  // namespace qcongest::check
