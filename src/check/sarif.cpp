#include "src/check/sarif.hpp"

#include <cstdint>

#include "src/obs/json.hpp"

namespace qcongest::check {

std::string render_sarif(const std::vector<LintDiagnostic>& diagnostics) {
  const std::vector<RuleInfo>& rules = rule_infos();
  obs::JsonWriter json;
  json.begin_object();
  json.key("$schema").value(
      "https://docs.oasis-open.org/sarif/sarif/v2.1.0/cos02/schemas/"
      "sarif-schema-2.1.0.json");
  json.key("version").value("2.1.0");
  json.key("runs").begin_array();
  json.begin_object();
  json.key("tool").begin_object();
  json.key("driver").begin_object();
  json.key("name").value("qlint");
  json.key("informationUri").value("DESIGN.md");
  json.key("rules").begin_array();
  for (const RuleInfo& rule : rules) {
    json.begin_object();
    json.key("id").value(rule.id);
    json.key("shortDescription").begin_object();
    json.key("text").value(rule.summary);
    json.end_object();
    json.key("defaultConfiguration").begin_object();
    json.key("level").value("error");
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();  // driver
  json.end_object();  // tool
  json.key("results").begin_array();
  for (const LintDiagnostic& diag : diagnostics) {
    std::int64_t rule_index = -1;
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (diag.rule == rules[i].id) rule_index = static_cast<std::int64_t>(i);
    }
    json.begin_object();
    json.key("ruleId").value(diag.rule);
    if (rule_index >= 0) json.key("ruleIndex").value(rule_index);
    json.key("level").value("error");
    json.key("message").begin_object();
    json.key("text").value(diag.message);
    json.end_object();
    json.key("locations").begin_array();
    json.begin_object();
    json.key("physicalLocation").begin_object();
    json.key("artifactLocation").begin_object();
    json.key("uri").value(diag.file);
    json.end_object();
    json.key("region").begin_object();
    json.key("startLine").value(static_cast<std::int64_t>(diag.line));
    json.end_object();
    json.end_object();
    json.end_object();
    json.end_array();
    json.end_object();
  }
  json.end_array();  // results
  json.end_object();  // run
  json.end_array();   // runs
  json.end_object();
  return json.str();
}

}  // namespace qcongest::check
