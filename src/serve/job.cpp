#include "src/serve/job.hpp"

#include <cctype>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "src/apps/net_options.hpp"
#include "src/apps/registry.hpp"
#include "src/cache/key.hpp"
#include "src/net/trace.hpp"
#include "src/obs/round_profiler.hpp"
#include "src/obs/run_report.hpp"
#include "src/recover/watchdog.hpp"

namespace qcongest::serve {

namespace {

bool parse_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool parse_size(std::string_view text, std::size_t* out) {
  std::uint64_t v = 0;
  if (!parse_u64(text, &v)) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

bool parse_prob(std::string_view text, double* out) {
  // Strict fixed/float notation, no exponents, no signs: probabilities on
  // the wire look like "0.05".
  if (text.empty() || text.size() > 18) return false;
  bool seen_dot = false, seen_digit = false;
  for (char c : text) {
    if (c == '.') {
      if (seen_dot) return false;
      seen_dot = true;
    } else if (c >= '0' && c <= '9') {
      seen_digit = true;
    } else {
      return false;
    }
  }
  if (!seen_digit) return false;
  *out = std::stod(std::string(text));
  return *out >= 0.0 && *out <= 1.0;
}

bool parse_flag(std::string_view text, bool* out) {
  if (text == "1" || text == "true") {
    *out = true;
    return true;
  }
  if (text == "0" || text == "false") {
    *out = false;
    return true;
  }
  return false;
}

/// node:crash:restart[:amnesia], fields strict.
bool parse_crash(std::string_view text, JobSpec::Crash* out) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t colon = text.find(':', start);
    if (colon == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.size() != 3 && parts.size() != 4) return false;
  std::size_t node = 0;
  if (!parse_size(parts[0], &node)) return false;
  out->node = static_cast<net::NodeId>(node);
  if (!parse_size(parts[1], &out->crash_round)) return false;
  if (parts[2] == "never") {
    out->restart_round = net::CrashEvent::kNeverRestarts;
  } else if (!parse_size(parts[2], &out->restart_round)) {
    return false;
  }
  out->amnesia = false;
  if (parts.size() == 4) {
    if (parts[3] != "amnesia") return false;
    out->amnesia = true;
  }
  return true;
}

bool fail(std::string* error, std::string reason) {
  if (error != nullptr) *error = std::move(reason);
  return false;
}

std::string format_prob(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", p);
  return buf;
}

}  // namespace

bool parse_job_spec(std::string_view text, JobSpec* out, std::string* error) {
  *out = JobSpec{};
  std::set<std::string> seen;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;
    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return fail(error, "line " + std::to_string(line_no) +
                             ": expected key=value, got '" + std::string(line) +
                             "'");
    }
    std::string key(line.substr(0, eq));
    std::string_view value = line.substr(eq + 1);
    // crash is the one repeatable key (one scheduled outage each).
    if (key != "crash" && !seen.insert(key).second) {
      return fail(error, "duplicate key '" + key + "'");
    }
    bool ok = true;
    if (key == "id") {
      ok = !value.empty() && value.size() <= 64;
      for (char c : value) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
            c != '_' && c != '.') {
          ok = false;
        }
      }
      if (ok) out->id = std::string(value);
    } else if (key == "app") {
      ok = !value.empty() && value.size() <= 64;
      if (ok) out->app = std::string(value);
    } else if (key == "graph") {
      ok = !value.empty() && value.size() <= 64;
      if (ok) out->graph = std::string(value);
    } else if (key == "nodes") {
      ok = parse_size(value, &out->nodes);
    } else if (key == "seed") {
      ok = parse_u64(value, &out->seed);
    } else if (key == "fault_seed") {
      ok = parse_u64(value, &out->fault_seed);
      out->fault_seed_set = ok;
    } else if (key == "threads") {
      ok = parse_size(value, &out->threads) && out->threads >= 1;
    } else if (key == "deadline_rounds") {
      ok = parse_size(value, &out->deadline_rounds);
    } else if (key == "transport") {
      if (value == "reliable") {
        out->transport = net::Transport::kReliable;
      } else if (value == "direct") {
        out->transport = net::Transport::kDirect;
      } else {
        ok = false;
      }
    } else if (key == "drop") {
      ok = parse_prob(value, &out->drop);
    } else if (key == "corrupt") {
      ok = parse_prob(value, &out->corrupt);
    } else if (key == "duplicate") {
      ok = parse_prob(value, &out->duplicate);
    } else if (key == "crash") {
      JobSpec::Crash crash;
      ok = parse_crash(value, &crash);
      if (ok) out->crashes.push_back(crash);
    } else if (key == "recover") {
      ok = parse_flag(value, &out->recover);
    } else {
      return fail(error, "unknown key '" + key + "'");
    }
    if (!ok) {
      return fail(error, "invalid value for '" + key + "': '" +
                             std::string(value) + "'");
    }
  }
  if (out->id.empty()) return fail(error, "missing required key 'id'");
  if (out->app.empty()) return fail(error, "missing required key 'app'");
  return true;
}

bool validate_job_spec(const JobSpec& spec, const JobLimits& limits,
                       std::string* error) {
  if (apps::find_app(spec.app) == nullptr) {
    return fail(error, "unknown app '" + spec.app + "'");
  }
  if (spec.nodes < 2 || spec.nodes > limits.max_nodes) {
    return fail(error, "nodes " + std::to_string(spec.nodes) +
                           " outside [2, " + std::to_string(limits.max_nodes) +
                           "]");
  }
  if (spec.threads > limits.max_threads) {
    return fail(error, "threads " + std::to_string(spec.threads) + " exceeds " +
                           std::to_string(limits.max_threads));
  }
  if (spec.deadline_rounds > limits.max_deadline_rounds) {
    return fail(error, "deadline_rounds " + std::to_string(spec.deadline_rounds) +
                           " exceeds " +
                           std::to_string(limits.max_deadline_rounds));
  }
  bool known_family = false;
  for (const std::string& family : apps::graph_families()) {
    if (family == spec.graph) known_family = true;
  }
  if (!known_family) {
    return fail(error, "unknown graph family '" + spec.graph + "'");
  }
  try {
    job_fault_plan(spec).validate(spec.nodes);
  } catch (const std::exception& e) {
    return fail(error, e.what());
  }
  return true;
}

net::FaultPlan job_fault_plan(const JobSpec& spec) {
  net::FaultPlan plan;
  plan.link.drop = spec.drop;
  plan.link.corrupt = spec.corrupt;
  plan.link.duplicate = spec.duplicate;
  for (const JobSpec::Crash& crash : spec.crashes) {
    net::CrashEvent event;
    event.node = crash.node;
    event.crash_round = crash.crash_round;
    event.restart_round = crash.restart_round;
    event.amnesia = crash.amnesia;
    plan.crashes.push_back(event);
  }
  plan.seed = spec.fault_seed_set ? spec.fault_seed : spec.seed * 1000;
  return plan;
}

std::string run_job_report(const JobSpec& spec,
                           std::size_t default_deadline_rounds) {
  const std::size_t deadline =
      spec.deadline_rounds > 0 ? spec.deadline_rounds : default_deadline_rounds;

  obs::RunReport report("qcongestd");
  obs::RunReport::Section& section = report.add_section(spec.app);
  section.set_label("app", spec.app);
  section.set_label("graph", spec.graph);
  section.set_label("nodes", std::to_string(spec.nodes));
  section.set_label("seed", std::to_string(spec.seed));
  section.set_label("fault_seed", std::to_string(job_fault_plan(spec).seed));
  section.set_label("transport", spec.transport == net::Transport::kReliable
                                     ? "reliable"
                                     : "direct");
  section.set_label("deadline_rounds", std::to_string(deadline));
  if (spec.drop > 0.0) section.set_label("drop", format_prob(spec.drop));
  if (spec.corrupt > 0.0) section.set_label("corrupt", format_prob(spec.corrupt));
  if (spec.duplicate > 0.0) {
    section.set_label("duplicate", format_prob(spec.duplicate));
  }
  if (!spec.crashes.empty()) {
    std::string windows;
    for (const JobSpec::Crash& c : spec.crashes) {
      if (!windows.empty()) windows += ' ';
      windows += std::to_string(static_cast<std::size_t>(c.node)) + ":[" +
                 std::to_string(c.crash_round) + "," +
                 (c.restart_round == net::CrashEvent::kNeverRestarts
                      ? std::string("never")
                      : std::to_string(c.restart_round)) +
                 ")" + (c.amnesia ? ":amnesia" : "");
    }
    section.set_label("crashes", windows);
    section.set_label("recover", spec.recover ? "on" : "off");
  }

  // Everything below is job-local — graph, engine, watchdog, taps — so
  // concurrently executing jobs cannot observe each other, which is half of
  // the byte-identity guarantee (the other half is the engine's own
  // threads-independent determinism).
  try {
    const net::Graph graph =
        apps::make_registry_graph(spec.graph, spec.nodes, spec.seed);
    const apps::AppRunner* runner = apps::find_app(spec.app);
    if (runner == nullptr) throw std::invalid_argument("unknown app " + spec.app);

    recover::Watchdog watchdog(recover::WatchdogConfig{
        /*stall_rounds=*/1024, /*deadline_rounds=*/deadline});
    net::Trace trace;
    obs::RoundProfiler profiler;

    apps::NetOptions options;
    options.seed = spec.seed;
    options.threads = spec.threads;
    options.transport = spec.transport;
    options.fault_plan = job_fault_plan(spec);
    options.watchdog = &watchdog;
    options.trace = &trace;
    options.metrics = &profiler;
    if (spec.recover) {
      options.recovery.enabled = true;
      options.recovery.checkpoint.every_rounds = 3;
    }

    apps::AppOutcome out = (*runner)(graph, options);
    section.set_outcome(out.success);
    section.set_result(out.cost);
    section.set_trace(trace);
    section.set_profile(profiler);
  } catch (const recover::LivelockError& e) {
    section.set_outcome(false);
    const char* kind = "retransmit_storm";
    if (e.kind() == recover::LivelockError::Kind::kDeadlineExceeded) {
      kind = "deadline_exceeded";
    } else if (e.kind() == recover::LivelockError::Kind::kQuiescentSpin) {
      kind = "quiescent_spin";
    }
    section.set_label("error_kind", kind);
    section.set_label("error_round", std::to_string(e.round()));
    std::string suspects;
    for (net::NodeId v : e.suspects()) {
      if (!suspects.empty()) suspects += ',';
      suspects += std::to_string(static_cast<std::size_t>(v));
    }
    if (!suspects.empty()) section.set_label("error_suspects", suspects);
    section.set_label("error", e.what());
  } catch (const std::exception& e) {
    section.set_outcome(false);
    section.set_label("error_kind", "exception");
    section.set_label("error", e.what());
  } catch (...) {
    section.set_outcome(false);
    section.set_label("error_kind", "exception");
    section.set_label("error", "unknown exception");
  }
  return report.to_json();
}

std::string job_cache_key(const JobSpec& spec,
                          std::size_t default_deadline_rounds,
                          std::string_view salt) {
  const std::size_t deadline =
      spec.deadline_rounds > 0 ? spec.deadline_rounds : default_deadline_rounds;
  cache::KeyBuilder key;
  key.field("salt", salt);
  key.field("producer", "qcongestd");
  key.field("schema", static_cast<std::uint64_t>(obs::kReportSchemaVersion));
  key.field("app", spec.app);
  key.field("graph", spec.graph);
  key.field("nodes", static_cast<std::uint64_t>(spec.nodes));
  key.field("seed", spec.seed);
  key.field("deadline_rounds", static_cast<std::uint64_t>(deadline));
  key.field("transport",
            spec.transport == net::Transport::kReliable ? "reliable" : "direct");
  key.field("recover", spec.recover);
  key.fault_plan("fault", job_fault_plan(spec));
  return key.digest();
}

}  // namespace qcongest::serve
