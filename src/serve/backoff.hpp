#pragma once

#include <cstdint>

namespace qcongest::serve {

/// Capped, deterministically jittered retry backoff for qload (and any
/// other client of the service). The scheme mirrors the reliable
/// transport's retransmission timer (ReliableParams::rto_cap, DESIGN.md
/// §7): exponential growth to a hard cap, then a hash-derived downward
/// jitter of up to a quarter of the delay, so that many clients rejected
/// by the same overload burst desynchronize instead of thundering back in
/// lockstep — while any given (seed, stream, attempt) triple always yields
/// the same delay, keeping load tests replayable.
struct BackoffParams {
  /// Delay of attempt 0, before jitter.
  std::uint64_t base_ms = 10;
  /// Hard ceiling of the un-jittered delay (the rto_cap analogue).
  std::uint64_t cap_ms = 640;
  /// Client identity folded into the jitter hash.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

/// Delay before retry number `attempt` (0-based) of logical retry stream
/// `stream` (e.g. one stream per in-flight job). Pure function:
/// min(cap, base << attempt) minus a hash jitter in [0, delay/4). Never
/// returns 0 when base_ms > 0, so a retry loop always yields.
std::uint64_t backoff_delay_ms(const BackoffParams& params, std::uint64_t stream,
                               std::uint64_t attempt);

}  // namespace qcongest::serve
