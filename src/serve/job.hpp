#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/net/engine.hpp"

namespace qcongest::serve {

/// One experiment job as submitted over the wire: which registry app to
/// run, on what topology, under what fault schedule, from what seed, with
/// what engine thread budget and round deadline. The spec travels as
/// strict `key=value` lines (one per line, '#' comments allowed):
///
///   id=job-7             client-chosen reply token (required)
///   app=bfs              registry app name (required)
///   graph=tree           tree|path|cycle|grid|random|star|complete
///   nodes=15             2 .. ServiceConfig::max_nodes
///   seed=42              engine seed (u64)
///   fault_seed=42000     fault-lottery seed (default seed * 1000)
///   threads=8            engine shards; NEVER affects the report bytes
///   deadline_rounds=500  watchdog round deadline (0 = server default)
///   transport=reliable   reliable|direct
///   drop=0.05 corrupt=0.01 duplicate=0.005
///   crash=3:30:60        node:crash_round:restart_round, repeatable
///   crash=3:90:120:amnesia   ...with amnesia (volatile state wiped)
///   recover=1            enable checkpoint + neighbor-assisted recovery
///
/// Parsing is as strict as the framing underneath it: unknown keys,
/// duplicate keys, malformed numbers, and out-of-range values are errors,
/// never guesses — a malformed job must yield a structured error report,
/// not a half-configured run.
struct JobSpec {
  std::string id;
  std::string app;
  std::string graph = "tree";
  std::size_t nodes = 15;
  std::uint64_t seed = 1;
  std::uint64_t fault_seed = 0;  // meaningful only when fault_seed_set
  bool fault_seed_set = false;
  std::size_t threads = 1;
  std::size_t deadline_rounds = 0;  // 0 = take the server default
  net::Transport transport = net::Transport::kReliable;
  double drop = 0.0;
  double corrupt = 0.0;
  double duplicate = 0.0;
  struct Crash {
    net::NodeId node = 0;
    std::size_t crash_round = 0;
    std::size_t restart_round = 0;
    bool amnesia = false;
  };
  std::vector<Crash> crashes;
  bool recover = false;
};

/// Admission limits a spec is validated against (ServiceConfig owns the
/// actual values; tests construct their own).
struct JobLimits {
  std::size_t max_nodes = 256;
  std::size_t max_threads = 16;
  std::size_t max_deadline_rounds = 1u << 20;
};

/// Parse `text` into *out. Returns false and a one-line reason in *error
/// on the first violation. Never throws.
bool parse_job_spec(std::string_view text, JobSpec* out, std::string* error);

/// Semantic validation beyond syntax: app and graph exist, sizes within
/// `limits`, fault probabilities in range, crash windows well-formed for
/// the topology (delegates to net::FaultPlan::validate).
bool validate_job_spec(const JobSpec& spec, const JobLimits& limits,
                       std::string* error);

/// The spec's fault schedule as an engine FaultPlan (fault_seed defaulting
/// to seed * 1000, chaos_run's convention).
net::FaultPlan job_fault_plan(const JobSpec& spec);

/// Run the job to completion and render its obs::RunReport JSON document.
///
/// This is the determinism product feature (acceptance gate of the
/// service-smoke CI job): the returned bytes are a pure function of the
/// spec's *semantic* fields and `default_deadline_rounds` — `threads` and
/// `id` are deliberately excluded from the document, so identical
/// (job, seed) pairs replayed at any thread budget, server load, or
/// arrival order compare byte-equal.
///
/// Exception isolation: a run that throws — a watchdog LivelockError at
/// the deadline, a CONGEST violation, a protocol bug — is converted into
/// a structured error section in the same report shape. The function
/// itself never throws; the caller (a pool worker) must never die.
std::string run_job_report(const JobSpec& spec,
                           std::size_t default_deadline_rounds);

/// The content-address of run_job_report's result: a cache::KeyBuilder
/// digest over exactly the inputs the report bytes depend on — semantic
/// spec fields plus the effective deadline — under `salt` (the
/// code-version salt). Deliberately excluded: `id` (reply header only,
/// never in the body) and `threads` (the engine's determinism contract
/// makes the body thread-count-independent, so all thread budgets share
/// one entry). fault_seed enters as its *effective* value, so an explicit
/// "fault_seed=<seed*1000>" and the default produce the same key.
std::string job_cache_key(const JobSpec& spec,
                          std::size_t default_deadline_rounds,
                          std::string_view salt);

}  // namespace qcongest::serve
