#include "src/serve/service.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/cache/key.hpp"

namespace qcongest::serve {

namespace {

JournalRecord lifecycle_record(JournalRecordType type, const std::string& key,
                               const std::string& id) {
  JournalRecord record;
  record.type = type;
  record.key = key;
  record.id = id;
  return record;
}

}  // namespace

Service::Service(ServiceConfig config)
    : config_(config),
      store_(config.cache_dir.empty()
                 ? nullptr
                 : std::make_unique<cache::Store>(config.cache_dir)),
      // ThreadPool(n) spawns n - 1 workers (the constructing thread only
      // participates in parallel_for, which the service never calls), so
      // +1 makes `workers` mean what it says: that many threads actually
      // executing submitted jobs.
      pool_(std::make_unique<util::ThreadPool>(
          std::max<std::size_t>(config.workers, 1) + 1)) {
  if (config_.journal_dir.empty()) return;

  // Durability boot sequence: digest whatever the previous incarnation
  // left behind, squeeze the directory down to the still-live records,
  // only then open the writer — and finally re-enqueue the survivors.
  recovery_ = recover_journal(config_.journal_dir);
  for (const recover::Diagnosis& diag : recovery_.diagnostics) {
    std::fprintf(stderr, "qcongestd %s\n", diag.to_string().c_str());
  }
  compact_journal(config_.journal_dir, recovery_);
  JournalConfig journal_config;
  journal_config.dir = config_.journal_dir;
  journal_config.rotate_bytes = config_.journal_rotate_bytes;
  journal_config.max_segments = config_.journal_max_segments;
  journal_config.fsync_each_record = config_.journal_fsync;
  journal_ = std::make_unique<Journal>(std::move(journal_config));
  journal_->seed_live(recovery_.incomplete);
  replay_recovered();
}

Service::~Service() = default;

void Service::replay_recovered() {
  for (const RecoveredJob& job : recovery_.incomplete) {
    JobSpec spec;
    std::string error;
    if (!parse_job_spec(job.spec, &spec, &error) ||
        !validate_job_spec(spec, config_.limits, &error)) {
      // The journal proves acceptance, but acceptance happened under a
      // previous configuration (or the record limps). Abort it durably so
      // the next restart does not replay it again, and say why.
      JournalRecord aborted =
          lifecycle_record(JournalRecordType::kAborted, job.key, job.id);
      aborted.reason = "replayed spec rejected: " + error;
      journal_->append(aborted);
      recover::Diagnosis diag{"journal", "invalid_spec", job.key,
                              "recovered spec rejected on replay (id=" +
                                  job.id + "): " + error};
      std::fprintf(stderr, "qcongestd %s\n", diag.to_string().c_str());
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.recovery_aborted;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.recovered;
      ++stats_.pending;
      // Register the in-flight entry (with no waiter) so a client that
      // resubmits the same job after the restart coalesces onto the
      // replayed run instead of racing a duplicate.
      inflight_[job.key];
    }
    enqueue_job(std::move(spec), job.key);
  }
}

void Service::submit(std::string spec_text, ReplyFn done) {
  JobSpec spec;
  std::string error;
  if (!parse_job_spec(spec_text, &spec, &error)) {
    JobReply reply;
    reply.status = JobReply::Status::kInvalid;
    reply.id = spec.id.empty() ? "?" : spec.id;
    reply.error = "bad job spec: " + error;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.submitted;
      ++stats_.invalid_specs;
    }
    done(reply);
    return;
  }
  if (!validate_job_spec(spec, config_.limits, &error)) {
    JobReply reply;
    reply.status = JobReply::Status::kInvalid;
    reply.id = spec.id;
    reply.error = "rejected job spec: " + error;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.submitted;
      ++stats_.invalid_specs;
    }
    done(reply);
    return;
  }

  // The job's identity from here on: replies, coalescing, journal records
  // and the result cache all share it, which is what makes resubmission
  // after a lost connection idempotent end to end.
  const std::string key = job_cache_key(spec, config_.default_deadline_rounds,
                                        cache::code_version_salt());

  // Admission control. The pending count is the only shared state the
  // decision needs; everything a job touches while running is job-local.
  bool shed = false;
  bool coalesced = false;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submitted;
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      // Identical job already admitted and running (or queued): attach to
      // it. No new pending slot, no new journal acceptance — the original
      // run owns the lifecycle and will answer every waiter.
      it->second.push_back(Waiter{spec.id, std::move(done)});
      ++stats_.coalesced;
      coalesced = true;
    } else if (stats_.pending >= config_.max_pending) {
      ++stats_.rejected_overload;
      shed = true;
      depth = stats_.pending;
    } else {
      ++stats_.admitted;
      ++stats_.pending;
      inflight_[key].push_back(Waiter{spec.id, std::move(done)});
    }
  }
  if (coalesced) return;
  if (shed) {
    JobReply reply;
    reply.status = JobReply::Status::kRejected;
    reply.id = spec.id;
    reply.error = "overloaded";
    reply.queue_depth = depth;
    // Hint scales with how deep past capacity we are, so a burst of
    // rejected clients spreads out instead of re-arriving together (their
    // own jittered backoff desynchronizes them further).
    const std::size_t workers = std::max<std::size_t>(config_.workers, 1);
    reply.retry_after_ms =
        config_.retry_after_base_ms * std::max<std::size_t>(1, depth / workers);
    done(reply);
    return;
  }

  // Admitted. The acceptance hits the journal before the job can produce
  // any reply: after this line a crash at any point leaves a record that
  // the restart turns back into this exact job.
  if (journal_ != nullptr) {
    JournalRecord accepted =
        lifecycle_record(JournalRecordType::kAccepted, key, spec.id);
    accepted.spec = spec_text;
    journal_->append(accepted);
  }
  enqueue_job(std::move(spec), key);
}

void Service::enqueue_job(JobSpec spec, std::string key) {
  // Fan out. The worker task owns the spec; it must never throw
  // (run_job_report converts run failures into error reports), but the
  // pool would swallow and count a throw from a waiter callback itself
  // rather than let it kill the process.
  const std::size_t default_deadline = config_.default_deadline_rounds;
  pool_->submit([this, spec = std::move(spec), key = std::move(key),
                 default_deadline]() {
    // Read-through: identical (job, seed) submissions — regardless of id,
    // thread budget, or arrival order — are served from the sealed store;
    // a miss (absent, corrupt, or truncated entry) runs the job and seals
    // the report back. Byte-identity holds on either path because the body
    // is a pure function of the key inputs.
    std::string body;
    bool cached = false;
    if (store_ != nullptr) cached = store_->get(key, &body);
    if (!cached) {
      if (journal_ != nullptr) {
        journal_->append(
            lifecycle_record(JournalRecordType::kStarted, key, spec.id));
      }
      body = run_job_report(spec, default_deadline);
      if (store_ != nullptr) {
        std::string put_error;
        (void)store_->put(key, body, &put_error);  // best effort
      }
    }
    // Completion is journaled before any waiter hears about it: a reply a
    // client managed to read is a reply no restart will ever recompute.
    if (journal_ != nullptr) {
      journal_->append(
          lifecycle_record(JournalRecordType::kCompleted, key, spec.id));
    }
    std::vector<Waiter> waiters;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.completed;
      --stats_.pending;
      if (store_ != nullptr) {
        if (cached) {
          ++stats_.cache_hits;
        } else {
          ++stats_.cache_misses;
        }
      }
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        waiters = std::move(it->second);
        inflight_.erase(it);
      }
    }
    for (Waiter& waiter : waiters) {
      if (!waiter.done) continue;  // journal replay has no client to answer
      JobReply reply;
      reply.status = JobReply::Status::kOk;
      reply.id = waiter.id;
      reply.body = body;
      waiter.done(reply);
    }
  });
}

Service::Stats Service::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string render_reply_payload(const JobReply& reply) {
  std::string out = "id=" + reply.id + "\n";
  switch (reply.status) {
    case JobReply::Status::kOk:
      out += "status=ok\n\n";
      out += reply.body;
      break;
    case JobReply::Status::kInvalid:
      out += "status=invalid\nerror=" + reply.error + "\n";
      break;
    case JobReply::Status::kRejected:
      out += "status=rejected\nreason=" + reply.error + "\nretry_after_ms=" +
             std::to_string(reply.retry_after_ms) + "\nqueue_depth=" +
             std::to_string(reply.queue_depth) + "\n";
      break;
  }
  return out;
}

}  // namespace qcongest::serve
