#include "src/serve/service.hpp"

#include <algorithm>
#include <utility>

#include "src/cache/key.hpp"

namespace qcongest::serve {

Service::Service(ServiceConfig config)
    : config_(config),
      store_(config.cache_dir.empty()
                 ? nullptr
                 : std::make_unique<cache::Store>(config.cache_dir)),
      // ThreadPool(n) spawns n - 1 workers (the constructing thread only
      // participates in parallel_for, which the service never calls), so
      // +1 makes `workers` mean what it says: that many threads actually
      // executing submitted jobs.
      pool_(std::make_unique<util::ThreadPool>(
          std::max<std::size_t>(config.workers, 1) + 1)) {}

Service::~Service() = default;

void Service::submit(std::string spec_text, ReplyFn done) {
  JobSpec spec;
  std::string error;
  if (!parse_job_spec(spec_text, &spec, &error)) {
    JobReply reply;
    reply.status = JobReply::Status::kInvalid;
    reply.id = spec.id.empty() ? "?" : spec.id;
    reply.error = "bad job spec: " + error;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.submitted;
      ++stats_.invalid_specs;
    }
    done(reply);
    return;
  }
  if (!validate_job_spec(spec, config_.limits, &error)) {
    JobReply reply;
    reply.status = JobReply::Status::kInvalid;
    reply.id = spec.id;
    reply.error = "rejected job spec: " + error;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.submitted;
      ++stats_.invalid_specs;
    }
    done(reply);
    return;
  }

  // Admission control. The pending count is the only shared state the
  // decision needs; everything a job touches while running is job-local.
  bool shed = false;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submitted;
    if (stats_.pending >= config_.max_pending) {
      ++stats_.rejected_overload;
      shed = true;
      depth = stats_.pending;
    } else {
      ++stats_.admitted;
      ++stats_.pending;
    }
  }
  if (shed) {
    JobReply reply;
    reply.status = JobReply::Status::kRejected;
    reply.id = spec.id;
    reply.error = "overloaded";
    reply.queue_depth = depth;
    // Hint scales with how deep past capacity we are, so a burst of
    // rejected clients spreads out instead of re-arriving together (their
    // own jittered backoff desynchronizes them further).
    const std::size_t workers = std::max<std::size_t>(config_.workers, 1);
    reply.retry_after_ms =
        config_.retry_after_base_ms * std::max<std::size_t>(1, depth / workers);
    done(reply);
    return;
  }

  // Admitted: fan out. The worker task owns spec + callback; it must never
  // throw (run_job_report converts run failures into error reports), but
  // the pool would swallow and count a throw from the callback itself
  // rather than let it kill the process.
  const std::size_t default_deadline = config_.default_deadline_rounds;
  pool_->submit([this, spec = std::move(spec), done = std::move(done),
                 default_deadline]() {
    JobReply reply;
    reply.status = JobReply::Status::kOk;
    reply.id = spec.id;
    // Read-through: identical (job, seed) submissions — regardless of id,
    // thread budget, or arrival order — are served from the sealed store;
    // a miss (absent, corrupt, or truncated entry) runs the job and seals
    // the report back. Byte-identity holds on either path because the body
    // is a pure function of the key inputs.
    bool cached = false;
    if (store_ != nullptr) {
      const std::string key =
          job_cache_key(spec, default_deadline, cache::code_version_salt());
      cached = store_->get(key, &reply.body);
      if (!cached) {
        reply.body = run_job_report(spec, default_deadline);
        std::string put_error;
        (void)store_->put(key, reply.body, &put_error);  // best effort
      }
    } else {
      reply.body = run_job_report(spec, default_deadline);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.completed;
      --stats_.pending;
      if (store_ != nullptr) {
        if (cached) {
          ++stats_.cache_hits;
        } else {
          ++stats_.cache_misses;
        }
      }
    }
    done(reply);
  });
}

Service::Stats Service::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string render_reply_payload(const JobReply& reply) {
  std::string out = "id=" + reply.id + "\n";
  switch (reply.status) {
    case JobReply::Status::kOk:
      out += "status=ok\n\n";
      out += reply.body;
      break;
    case JobReply::Status::kInvalid:
      out += "status=invalid\nerror=" + reply.error + "\n";
      break;
    case JobReply::Status::kRejected:
      out += "status=rejected\nreason=" + reply.error + "\nretry_after_ms=" +
             std::to_string(reply.retry_after_ms) + "\nqueue_depth=" +
             std::to_string(reply.queue_depth) + "\n";
      break;
  }
  return out;
}

}  // namespace qcongest::serve
