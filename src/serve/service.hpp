#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/cache/store.hpp"
#include "src/serve/job.hpp"
#include "src/serve/journal.hpp"
#include "src/util/thread_pool.hpp"

namespace qcongest::serve {

/// Tuning of the multi-tenant job service.
struct ServiceConfig {
  /// Worker threads jobs fan out on (the shared util::ThreadPool).
  std::size_t workers = 4;
  /// Admission bound: jobs admitted but not yet replied to (queued +
  /// running). One slow tenant can fill its share of the queue, but the
  /// queue itself can never grow without bound — beyond this the service
  /// sheds load with a structured rejection instead of buffering or
  /// hanging.
  std::size_t max_pending = 32;
  /// Watchdog round deadline applied to jobs that do not set their own —
  /// the guarantee that a hung protocol becomes a structured report, not a
  /// wedged worker thread.
  std::size_t default_deadline_rounds = 200000;
  /// Per-spec admission limits.
  JobLimits limits;
  /// Base of the retry-after hint in rejections; the hint scales with the
  /// overload depth so clients spread their retries.
  std::uint64_t retry_after_base_ms = 25;
  /// Root of the content-addressed result cache (src/cache). Empty = no
  /// caching. With a cache, admitted jobs take a read-through path: the
  /// reply body for an identical (job, seed) submission — any thread
  /// budget, any id — is served from the store instead of re-running, and
  /// misses seal their report back in. Safe because the body is a pure
  /// function of the job_cache_key inputs; a corrupt entry degrades to a
  /// recomputed miss inside the store.
  std::string cache_dir;
  /// Root of the write-ahead job journal (src/serve/journal). Empty = no
  /// durability. With a journal, every admitted job's spec is persisted
  /// before its reply can exist; on construction the service replays the
  /// directory — completed jobs are left to the result cache, incomplete
  /// accepted jobs are re-enqueued in journal order — so a SIGKILLed
  /// daemon restarts without losing a single accepted job. Pair it with
  /// cache_dir: the cache is what makes replayed completions cheap and
  /// client resubmissions byte-identical.
  std::string journal_dir;
  /// fsync the journal after every record (power-loss durability). The
  /// default off still survives process death via the page cache.
  bool journal_fsync = false;
  /// Journal segment rotation / compaction knobs (see JournalConfig).
  std::size_t journal_rotate_bytes = 1 << 20;
  std::size_t journal_max_segments = 4;
};

/// One reply per submitted job, exactly once.
struct JobReply {
  enum class Status {
    /// The job ran; body is the report JSON (which itself may describe a
    /// run-level error — deadline, CONGEST violation — in its error labels).
    kOk,
    /// The spec never ran: unparseable or invalid. error says why.
    kInvalid,
    /// Shed at admission; error names the reason and retry_after_ms hints
    /// when to come back.
    kRejected,
  };
  Status status = Status::kOk;
  std::string id;  // spec id; "?" when the spec was too broken to carry one
  std::string body;
  std::string error;
  std::uint64_t retry_after_ms = 0;
  std::size_t queue_depth = 0;  // admitted jobs at reply time (rejections)
};

/// The socket-free heart of qcongestd: parse -> validate -> admit ->
/// execute on the pool -> reply. Fully testable without a network, which
/// is how the admission, deadline, and isolation semantics are unit-tested.
///
/// Robustness contract:
///  - submit never blocks on job execution and never throws on bad input;
///    every spec gets exactly one reply.
///  - a full admission queue yields Status::kRejected with a retry-after
///    hint (load shedding), never an unbounded queue or a hang;
///  - job execution is exception-isolated (run_job_report converts throws
///    into structured error reports);
///  - destruction drains: admitted jobs finish and their callbacks fire
///    before the destructor returns (the pool's drain guarantee).
///
/// Determinism: the reply body for an admitted job is a pure function of
/// (spec semantics, default_deadline_rounds) — independent of load,
/// arrival order, worker count, and the spec's own threads knob.
class Service {
 public:
  using ReplyFn = std::function<void(const JobReply&)>;

  explicit Service(ServiceConfig config);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Submit one job spec. `done` fires exactly once: synchronously (in the
  /// calling thread) for rejections and invalid specs, from a pool worker
  /// when an admitted job completes. The callback must be thread-safe
  /// against the caller's own state and must not re-enter submit of a
  /// draining service.
  void submit(std::string spec_text, ReplyFn done);

  struct Stats {
    std::size_t submitted = 0;
    std::size_t admitted = 0;
    std::size_t completed = 0;
    std::size_t rejected_overload = 0;
    std::size_t invalid_specs = 0;
    std::size_t pending = 0;  // admitted, reply not yet delivered
    std::size_t cache_hits = 0;    // replies served from the result cache
    std::size_t cache_misses = 0;  // executed (and sealed) on a miss
    /// Submissions that attached to an identical in-flight job instead of
    /// running again — the server half of idempotent resubmission: a
    /// reconnecting client re-sending a spec whose first copy is still
    /// running gets the same bytes from the same run.
    std::size_t coalesced = 0;
    std::size_t recovered = 0;         // incomplete jobs re-enqueued at startup
    std::size_t recovery_aborted = 0;  // recovered specs that failed re-validation
  };
  Stats stats() const;

  const ServiceConfig& config() const { return config_; }

  /// What the journal replay found at construction (empty recovery when
  /// journal_dir is unset).
  const JournalRecovery& recovery() const { return recovery_; }
  /// The live journal, or nullptr when journal_dir is unset.
  const Journal* journal() const { return journal_.get(); }

 private:
  struct Waiter {
    std::string id;
    ReplyFn done;  // empty for journal-replayed jobs (no client to answer)
  };

  /// Fan one admitted job out to the pool; the accepted record (if any)
  /// must already be journaled. Completion resolves every waiter
  /// registered under `key`.
  void enqueue_job(JobSpec spec, std::string key);
  /// Re-enqueue the recovery's incomplete jobs, in journal order.
  void replay_recovered();

  ServiceConfig config_;
  mutable std::mutex mutex_;
  Stats stats_;
  /// Admitted jobs not yet completed, keyed by cache key, each with the
  /// waiters to answer on completion. Guarded by mutex_.
  std::map<std::string, std::vector<Waiter>> inflight_;
  JournalRecovery recovery_;
  /// Durability layer (null when journal_dir is empty). Like the store it
  /// must be declared before pool_: draining workers still append
  /// completion records.
  std::unique_ptr<Journal> journal_;
  /// The read-through result cache (null when cache_dir is empty). Must be
  /// declared before pool_: draining workers still consult it.
  std::unique_ptr<cache::Store> store_;
  /// Declared last, so it is destroyed first: the pool drains in-flight
  /// jobs while the rest of the service (mutex, stats, config, store) is
  /// still alive for their completion callbacks.
  std::unique_ptr<util::ThreadPool> pool_;
};

/// Render a reply as the wire payload of its frame (kResult / kRejected):
/// `key=value` header lines, then for kOk a blank line and the report JSON.
std::string render_reply_payload(const JobReply& reply);

}  // namespace qcongest::serve
