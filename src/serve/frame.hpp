#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace qcongest::serve {

/// The qcongestd wire protocol: length-prefixed frames over a byte stream
/// (monotone's netsync framing is the idiom reference). Every frame is an
/// 8-byte little-endian header followed by the payload:
///
///   u16 magic     0x5143 ("CQ")
///   u8  version   kWireVersion
///   u8  type      FrameType
///   u32 length    payload bytes that follow
///
/// Hardening contract: the parser never trusts the peer. A bad magic,
/// unknown version or type, or a length above the reader's cap poisons the
/// parse with a structured error — the server tears the connection down
/// cleanly instead of desynchronizing or allocating attacker-chosen
/// amounts. A stream that ends mid-frame is reported as truncated. Parser
/// state is strictly per-connection (one FrameReader each), so no bytes or
/// errors ever leak across connections.

inline constexpr std::uint16_t kWireMagic = 0x5143;
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 8;
/// Default payload cap. Run reports for the topologies the service admits
/// are well under this; anything larger is a malformed or hostile frame.
inline constexpr std::size_t kMaxPayload = 4u << 20;

enum class FrameType : std::uint8_t {
  /// Client -> server: a job spec (see serve/job.hpp) as key=value text.
  kSubmit = 1,
  /// Server -> client: a finished job's reply — status header lines, a
  /// blank line, then the obs::RunReport JSON document.
  kResult = 2,
  /// Server -> client: the job was shed at admission (queue full or spec
  /// over limits); header lines carry the reason and a retry-after hint.
  kRejected = 3,
  /// Server -> client: the connection itself is being torn down (protocol
  /// violation); payload is a one-line reason.
  kError = 4,
  /// Client -> server liveness probe; the server answers with kPong.
  kPing = 5,
  kPong = 6,
  /// Client -> server: finish in-flight jobs, then exit the serve loop.
  kShutdown = 7,
};

/// True for the types a well-formed peer may put on the wire at all.
bool frame_type_known(std::uint8_t type);

struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Serialize one frame (header + payload). The payload may hold arbitrary
/// bytes; callers enforce their own size discipline (encode does not cap,
/// the receiving reader does).
std::string encode_frame(FrameType type, std::string_view payload);

/// Incremental frame parser for one connection. Feed bytes as they arrive;
/// poll next() for complete frames. The first malformed header poisons the
/// reader permanently — after a framing error the byte stream has no
/// trustworthy resynchronization point, so the only safe move is to drop
/// the connection.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_payload = kMaxPayload)
      : max_payload_(max_payload) {}

  enum class Result {
    kFrame,     // *out was filled with the next complete frame
    kNeedMore,  // no complete frame buffered yet
    kError,     // poisoned; see error()
  };

  /// Append raw bytes received from the peer.
  void feed(std::string_view bytes);

  /// Signal end-of-stream. Buffered partial bytes become a truncated-frame
  /// error; a clean boundary stays kNeedMore.
  void finish();

  /// Extract the next complete frame. Validates magic, version, type, and
  /// the length cap before accepting the header.
  Result next(Frame* out);

  bool poisoned() const { return poisoned_; }
  const std::string& error() const { return error_; }

  /// Total frames successfully parsed (diagnostics).
  std::size_t frames_parsed() const { return frames_parsed_; }

 private:
  Result poison(std::string reason);

  std::size_t max_payload_;
  std::string buffer_;
  std::size_t consumed_ = 0;  // parsed prefix of buffer_, compacted lazily
  bool finished_ = false;
  bool poisoned_ = false;
  std::string error_;
  std::size_t frames_parsed_ = 0;
};

}  // namespace qcongest::serve
