#include "src/serve/frame.hpp"

namespace qcongest::serve {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint16_t get_u16(const char* p) {
  return static_cast<std::uint16_t>(static_cast<unsigned char>(p[0]) |
                                    (static_cast<unsigned char>(p[1]) << 8));
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

bool frame_type_known(std::uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kSubmit:
    case FrameType::kResult:
    case FrameType::kRejected:
    case FrameType::kError:
    case FrameType::kPing:
    case FrameType::kPong:
    case FrameType::kShutdown:
      return true;
  }
  return false;
}

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  put_u16(out, kWireMagic);
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

void FrameReader::feed(std::string_view bytes) {
  if (poisoned_ || finished_) return;
  buffer_.append(bytes);
}

void FrameReader::finish() { finished_ = true; }

FrameReader::Result FrameReader::poison(std::string reason) {
  poisoned_ = true;
  error_ = std::move(reason);
  buffer_.clear();
  consumed_ = 0;
  return Result::kError;
}

FrameReader::Result FrameReader::next(Frame* out) {
  if (poisoned_) return Result::kError;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) {
    if (finished_ && available > 0) {
      return poison("truncated frame: stream ended inside a header (" +
                    std::to_string(available) + " of " +
                    std::to_string(kHeaderBytes) + " header bytes)");
    }
    return Result::kNeedMore;
  }
  const char* header = buffer_.data() + consumed_;
  const std::uint16_t magic = get_u16(header);
  if (magic != kWireMagic) {
    return poison("bad magic 0x" + std::to_string(magic) +
                  ": not a qcongestd frame");
  }
  const std::uint8_t version = static_cast<std::uint8_t>(header[2]);
  if (version != kWireVersion) {
    return poison("unsupported wire version " + std::to_string(version) +
                  " (speaking " + std::to_string(kWireVersion) + ")");
  }
  const std::uint8_t type = static_cast<std::uint8_t>(header[3]);
  if (!frame_type_known(type)) {
    return poison("unknown frame type " + std::to_string(type));
  }
  const std::uint32_t length = get_u32(header + 4);
  if (length > max_payload_) {
    // Reject before buffering: an attacker-chosen length must never drive
    // an allocation.
    return poison("oversized frame: payload " + std::to_string(length) +
                  " exceeds cap " + std::to_string(max_payload_));
  }
  if (available < kHeaderBytes + length) {
    if (finished_) {
      return poison("truncated frame: stream ended " +
                    std::to_string(kHeaderBytes + length - available) +
                    " bytes short of the declared payload");
    }
    return Result::kNeedMore;
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(buffer_, consumed_ + kHeaderBytes, length);
  consumed_ += kHeaderBytes + length;
  ++frames_parsed_;
  // Compact once the parsed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (consumed_ > 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  return Result::kFrame;
}

}  // namespace qcongest::serve
