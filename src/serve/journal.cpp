#include "src/serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/cache/sha256.hpp"

namespace qcongest::serve {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kMagic = "qwal1 ";
/// Ceiling on a claimed payload length; anything above it is a corrupted
/// length prefix, not a real record (specs are tiny, reports never enter
/// the journal). Keeps a flipped bit in the length field from swallowing
/// the rest of a segment as "payload".
constexpr std::size_t kMaxRecordPayload = 1 << 20;

bool hex_key(const std::string& key) {
  if (key.size() < 16 || key.size() > 64) return false;
  for (char c : key) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

bool type_from_word(std::string_view word, JournalRecordType* type) {
  if (word == "accepted") *type = JournalRecordType::kAccepted;
  else if (word == "started") *type = JournalRecordType::kStarted;
  else if (word == "completed") *type = JournalRecordType::kCompleted;
  else if (word == "aborted") *type = JournalRecordType::kAborted;
  else return false;
  return true;
}

std::string sanitize_line(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

/// Parse a verified payload back into a record (the checksum already
/// passed; this guards the field structure). False on malformed layout.
bool decode_payload(JournalRecordType type, std::string_view payload,
                    JournalRecord* record) {
  record->type = type;
  record->key.clear();
  record->id.clear();
  record->spec.clear();
  record->reason.clear();
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    std::string_view line = payload.substr(pos, eol - pos);
    if (line.empty()) {
      // Blank separator: the rest is the spec text, verbatim.
      if (type != JournalRecordType::kAccepted) return false;
      record->spec.assign(payload.substr(eol + 1 > payload.size()
                                             ? payload.size()
                                             : eol + 1));
      break;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) return false;
    std::string_view name = line.substr(0, eq);
    std::string_view value = line.substr(eq + 1);
    if (name == "key") record->key.assign(value);
    else if (name == "id") record->id.assign(value);
    else if (name == "reason") record->reason.assign(value);
    else return false;  // unknown header = not a sound record
    pos = eol + 1;
  }
  if (!hex_key(record->key)) return false;
  if (type == JournalRecordType::kAccepted && record->spec.empty()) return false;
  return true;
}

/// Parse `<type> <len> <fnv16>` after the magic. False on any deviation.
bool parse_header(std::string_view rest, JournalRecordType* type,
                  std::size_t* len, std::string_view* checksum) {
  std::size_t sp1 = rest.find(' ');
  if (sp1 == std::string_view::npos) return false;
  if (!type_from_word(rest.substr(0, sp1), type)) return false;
  std::size_t sp2 = rest.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return false;
  std::size_t value = 0;
  for (char c : rest.substr(sp1 + 1, sp2 - sp1 - 1)) {
    if (c < '0' || c > '9') return false;
    if (value > (kMaxRecordPayload + 9)) return false;  // early overflow cut
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *len = value;
  *checksum = rest.substr(sp2 + 1);
  if (checksum->size() != 16) return false;
  for (char c : *checksum) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

std::string segment_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%08llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Sequence number of a segment file name, or 0 if the name is foreign.
std::uint64_t segment_seq(const std::string& name) {
  if (name.size() < 13 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return 0;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = 4; i + 4 < name.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

/// Segment paths in `dir`, sorted by file name (= sequence order).
std::vector<fs::path> list_segments(const std::string& dir) {
  std::vector<fs::path> segments;
  std::error_code ec;
  if (!fs::exists(dir, ec) || ec) return segments;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec) || ec) continue;
    if (segment_seq(entry.path().filename().string()) == 0) continue;
    segments.push_back(entry.path());
  }
  std::sort(segments.begin(), segments.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.filename().string() < b.filename().string();
            });
  return segments;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::string_view journal_type_word(JournalRecordType type) {
  switch (type) {
    case JournalRecordType::kAccepted: return "accepted";
    case JournalRecordType::kStarted: return "started";
    case JournalRecordType::kCompleted: return "completed";
    case JournalRecordType::kAborted: return "aborted";
  }
  return "accepted";
}

std::string encode_journal_record(const JournalRecord& record) {
  std::string payload = "key=" + record.key + "\nid=" +
                        sanitize_line(record.id) + "\n";
  if (record.type == JournalRecordType::kAborted) {
    payload += "reason=" + sanitize_line(record.reason) + "\n";
  }
  if (record.type == JournalRecordType::kAccepted) {
    payload += "\n";
    payload += record.spec;
  }
  std::string out;
  out.reserve(payload.size() + 48);
  out += kMagic;
  out += journal_type_word(record.type);
  out += ' ';
  out += std::to_string(payload.size());
  out += ' ';
  out += cache::fnv1a64_hex(payload);
  out += '\n';
  out += payload;
  out += '\n';
  return out;
}

void scan_journal_segment(std::string_view bytes, std::vector<JournalRecord>* out,
                          JournalScanStats* stats) {
  std::size_t pos = 0;
  // Skip damage by hunting for the next plausible record boundary; the
  // checksum then arbitrates whether it really is one.
  auto resync = [&](std::size_t from) {
    ++stats->corrupt_records;
    std::size_t next = bytes.find("\nqwal1 ", from);
    if (next == std::string_view::npos) {
      pos = bytes.size();
      return;
    }
    ++stats->resyncs;
    pos = next + 1;
  };
  while (pos < bytes.size()) {
    std::size_t eol = bytes.find('\n', pos);
    if (eol == std::string_view::npos) {
      // No complete header line remains: a record (or garbage) cut at EOF.
      // Indistinguishable from a crash mid-append, so count it as torn.
      stats->torn_tail = true;
      return;
    }
    if (bytes.compare(pos, kMagic.size(), kMagic) != 0) {
      resync(pos);
      continue;
    }
    JournalRecordType type;
    std::size_t len = 0;
    std::string_view checksum;
    if (!parse_header(bytes.substr(pos + kMagic.size(), eol - pos - kMagic.size()),
                      &type, &len, &checksum) ||
        len > kMaxRecordPayload) {
      resync(eol);
      continue;
    }
    std::size_t end = eol + 1 + len + 1;  // payload + trailing newline
    if (end > bytes.size()) {
      // The file ends inside the claimed payload. A genuine torn tail —
      // unless a later record boundary exists, which means the length
      // prefix itself is corrupt and the tail is salvageable.
      if (bytes.find("\nqwal1 ", eol) != std::string_view::npos) {
        resync(eol);
        continue;
      }
      stats->torn_tail = true;
      return;
    }
    std::string_view payload = bytes.substr(eol + 1, len);
    if (bytes[end - 1] != '\n' || cache::fnv1a64_hex(payload) != checksum) {
      // Payload-level damage under a parseable header. Prefer skipping by
      // the claimed length — when the flipped byte is in the payload (or
      // the separator newline itself) the next record sits exactly at
      // `end` even though no "\n" boundary survives to search for. If the
      // length field was what got flipped, `end` lands in garbage; fall
      // back to the boundary hunt.
      if (end == bytes.size() ||
          bytes.compare(end, kMagic.size(), kMagic) == 0) {
        ++stats->corrupt_records;
        pos = end;
        continue;
      }
      resync(eol);
      continue;
    }
    JournalRecord record;
    if (!decode_payload(type, payload, &record)) {
      // Well-framed (the checksum passed) but structurally foreign: skip
      // by the verified frame length, no resync hunt needed.
      ++stats->corrupt_records;
      pos = end;
      continue;
    }
    ++stats->records;
    if (out != nullptr) out->push_back(std::move(record));
    pos = end;
  }
}

bool JournalRecovery::is_terminal(const std::string& key) const {
  auto it = terminal_.find(key);
  return it != terminal_.end() && it->second;
}

JournalRecovery recover_journal(const std::string& dir) {
  JournalRecovery recovery;
  struct JobState {
    bool accepted = false;
    bool terminal = false;
    std::size_t order = 0;
    std::string id;
    std::string spec;
  };
  std::map<std::string, JobState> jobs;
  std::size_t next_order = 0;

  for (const fs::path& segment : list_segments(dir)) {
    ++recovery.segments;
    std::vector<JournalRecord> records;
    JournalScanStats scan;
    scan_journal_segment(read_file(segment), &records, &scan);
    recovery.records += scan.records;
    recovery.corrupt_records += scan.corrupt_records;
    recovery.resyncs += scan.resyncs;
    if (scan.torn_tail) ++recovery.torn_tails;
    if (scan.corrupt_records > 0) {
      recovery.diagnostics.push_back(recover::Diagnosis{
          "journal", "corrupt_segment", segment.filename().string(),
          std::to_string(scan.corrupt_records) + " corrupt record(s) skipped, " +
              std::to_string(scan.resyncs) + " resync(s)"});
    }

    for (JournalRecord& record : records) {
      JobState& state = jobs[record.key];
      switch (record.type) {
        case JournalRecordType::kAccepted:
          // First acceptance wins; duplicates (compaction echoes, client
          // resubmissions that raced a crash) are idempotent, and a
          // terminal state is never resurrected.
          if (!state.accepted && !state.terminal) {
            state.accepted = true;
            state.order = next_order++;
            state.id = std::move(record.id);
            state.spec = std::move(record.spec);
          }
          break;
        case JournalRecordType::kStarted:
          if (!state.accepted && !state.terminal) {
            recovery.diagnostics.push_back(recover::Diagnosis{
                "journal", "orphan_record", record.key,
                "started record without an accepted record (id=" + record.id +
                    ", segment " + segment.filename().string() + ")"});
          }
          break;
        case JournalRecordType::kCompleted:
        case JournalRecordType::kAborted:
          if (!state.accepted && !state.terminal) {
            recovery.diagnostics.push_back(recover::Diagnosis{
                "journal", "orphan_record", record.key,
                std::string(journal_type_word(record.type)) +
                    " record without an accepted record (id=" + record.id +
                    ", segment " + segment.filename().string() + ")"});
          }
          // Terminal states absorb regardless of record order, so replay
          // can never re-run a job that any surviving record proves done.
          if (!state.terminal) {
            state.terminal = true;
            if (record.type == JournalRecordType::kCompleted) {
              ++recovery.completed_jobs;
            } else {
              ++recovery.aborted_jobs;
            }
          }
          break;
      }
    }
  }

  std::vector<std::pair<std::size_t, RecoveredJob>> ordered;
  for (auto& [key, state] : jobs) {
    if (state.accepted) ++recovery.accepted_jobs;
    recovery.terminal_[key] = state.terminal;
    if (state.accepted && !state.terminal) {
      ordered.push_back({state.order, RecoveredJob{key, std::move(state.id),
                                                  std::move(state.spec)}});
    }
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  recovery.incomplete.reserve(ordered.size());
  for (auto& [order, job] : ordered) {
    recovery.incomplete.push_back(std::move(job));
  }
  return recovery;
}

std::size_t compact_journal(const std::string& dir,
                            const JournalRecovery& recovery) {
  std::vector<fs::path> segments = list_segments(dir);
  if (segments.empty()) return 0;
  std::uint64_t max_seq = 0;
  for (const fs::path& segment : segments) {
    max_seq = std::max(max_seq, segment_seq(segment.filename().string()));
  }

  // Publish the live set as one fresh segment *above* every existing one,
  // then delete the old files. A crash in between leaves duplicates, which
  // recovery treats as idempotent.
  if (!recovery.incomplete.empty()) {
    const fs::path target = fs::path(dir) / segment_name(max_seq + 1);
    const fs::path tmp = target.string() + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return 0;
      for (const RecoveredJob& job : recovery.incomplete) {
        JournalRecord record;
        record.type = JournalRecordType::kAccepted;
        record.key = job.key;
        record.id = job.id;
        record.spec = job.spec;
        out << encode_journal_record(record);
      }
      out.flush();
      if (!out) {
        std::error_code cleanup;
        fs::remove(tmp, cleanup);
        return 0;
      }
    }
    std::error_code ec;
    fs::rename(tmp, target, ec);  // atomic publish
    if (ec) {
      std::error_code cleanup;
      fs::remove(tmp, cleanup);
      return 0;
    }
  }

  std::size_t removed = 0;
  for (const fs::path& segment : segments) {
    std::error_code rm;
    fs::remove(segment, rm);
    if (!rm) ++removed;
  }
  return removed;
}

Journal::Journal(JournalConfig config) : config_(std::move(config)) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec) {
    degrade_locked("cannot create journal dir");
    return;
  }
  std::uint64_t max_seq = 0;
  for (const fs::path& segment : list_segments(config_.dir)) {
    max_seq = std::max(max_seq, segment_seq(segment.filename().string()));
    closed_.push_back(segment.string());
  }
  next_seq_ = max_seq + 1;
  if (!open_segment_locked()) degrade_locked("cannot open journal segment");
}

Journal::~Journal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Journal::seed_live(const std::vector<RecoveredJob>& jobs) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const RecoveredJob& job : jobs) {
    live_[job.key] = {job.id, job.spec};
  }
}

bool Journal::open_segment_locked() {
  const std::string path =
      config_.dir + "/" + segment_name(next_seq_);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  fd_ = fd;
  active_path_ = path;
  active_bytes_ = 0;
  ++next_seq_;
  return true;
}

bool Journal::write_all_locked(std::string_view bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + written, bytes.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // disk full, EIO, closed fd — degrade, never throw
  }
  if (config_.fsync_each_record) {
    while (::fsync(fd_) != 0) {
      if (errno == EINTR) continue;
      return false;
    }
  }
  return true;
}

void Journal::degrade_locked(const char* what) {
  ++stats_.io_errors;
  if (!stats_.degraded) {
    stats_.degraded = true;
    std::fprintf(stderr,
                 "qcongestd journal: %s (errno=%d %s); degrading to "
                 "non-durable mode — jobs keep running, restarts lose "
                 "in-flight work\n",
                 what, errno, std::strerror(errno));
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Journal::append(const JournalRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.degraded) {
    ++stats_.dropped;
    return;
  }
  const std::string bytes = encode_journal_record(record);
  if (!write_all_locked(bytes)) {
    degrade_locked("append failed");
    ++stats_.dropped;
    return;
  }
  ++stats_.appends;
  stats_.bytes_appended += bytes.size();
  active_bytes_ += bytes.size();

  switch (record.type) {
    case JournalRecordType::kAccepted:
      live_[record.key] = {record.id, record.spec};
      break;
    case JournalRecordType::kStarted:
      break;
    case JournalRecordType::kCompleted:
    case JournalRecordType::kAborted:
      live_.erase(record.key);
      break;
  }

  if (active_bytes_ >= config_.rotate_bytes) rotate_locked();
  if (closed_.size() > config_.max_segments) compact_closed_locked();
}

void Journal::rotate_locked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  closed_.push_back(active_path_);
  if (!open_segment_locked()) {
    degrade_locked("cannot rotate journal segment");
    return;
  }
  ++stats_.rotations;
}

void Journal::compact_closed_locked() {
  // Rewrite every closed segment into one holding the accepted records of
  // jobs still live. The terminal records that complete live jobs land in
  // the active segment (or later ones); recovery is order-insensitive per
  // key, so the compacted segment taking a higher sequence number is fine.
  const std::string target =
      config_.dir + "/" + segment_name(next_seq_);
  const std::string tmp = target + ".tmp";
  ++next_seq_;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      degrade_locked("cannot open compaction tmp");
      return;
    }
    for (const auto& [key, job] : live_) {
      JournalRecord record;
      record.type = JournalRecordType::kAccepted;
      record.key = key;
      record.id = job.first;
      record.spec = job.second;
      out << encode_journal_record(record);
    }
    out.flush();
    if (!out) {
      std::error_code cleanup;
      fs::remove(tmp, cleanup);
      degrade_locked("short write during compaction");
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);  // atomic publish
  if (ec) {
    std::error_code cleanup;
    fs::remove(tmp, cleanup);
    degrade_locked("cannot publish compacted segment");
    return;
  }
  for (const std::string& segment : closed_) {
    std::error_code rm;
    fs::remove(segment, rm);
  }
  closed_.clear();
  closed_.push_back(target);
  ++stats_.compactions;
}

bool Journal::durable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !stats_.degraded;
}

Journal::Stats Journal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Journal::export_metrics(obs::MetricsRegistry& registry) const {
  const Stats s = stats();
  registry.count("journal.appends", s.appends);
  registry.count("journal.dropped", s.dropped);
  registry.count("journal.io_errors", s.io_errors);
  registry.count("journal.rotations", s.rotations);
  registry.count("journal.compactions", s.compactions);
  registry.count("journal.bytes_appended", s.bytes_appended);
  registry.count("journal.degraded", s.degraded ? 1 : 0);
}

}  // namespace qcongest::serve
