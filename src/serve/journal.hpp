#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/recover/watchdog.hpp"

namespace qcongest::serve {

/// Write-ahead journal of job lifecycle records, the durability layer under
/// qcongestd (DESIGN.md §15). The contract leans entirely on the paper's
/// determinism guarantee: a report is a pure function of its spec, so the
/// journal never needs to persist results — it persists *intents* (the spec
/// text behind every accepted job) and lets replay re-derive byte-identical
/// bytes, with the content-addressed store (src/cache) short-circuiting
/// anything that already completed.
///
/// On-disk format, one record:
///
///   qwal1 <type> <len> <fnv16>\n<payload bytes>\n
///
/// where <type> is accepted|started|completed|aborted, <len> the decimal
/// payload size, and <fnv16> cache::fnv1a64_hex(payload) — the same
/// checksum the store stamps on entries. The payload is `key=value` header
/// lines (key, id, reason) and, for accepted records, a blank line followed
/// by the raw spec text. Records append to segment files
/// `wal-<8-digit-seq>.log`; segments rotate at a byte budget and fully
/// completed history is compacted away by rewriting the live set through a
/// tmp-then-rename publish (the store's discipline).
///
/// Failure policy, in order of preference ("degradation ladder", DESIGN.md
/// §15): fsync per record when configured, plain buffered appends by
/// default (SIGKILL-proof via the page cache), and on any I/O failure —
/// disk full, EIO, unwritable dir — the journal drops to non-durable mode:
/// one warning, a counter, every later append a no-op. Never a throw from
/// the hot path, never wrong bytes (replay only ever re-runs pure specs).

/// Lifecycle stages a job moves through, in order. `aborted` is terminal
/// like `completed` but marks a job that will never produce a report
/// (e.g. its recovered spec no longer validates).
enum class JournalRecordType : std::uint8_t {
  kAccepted = 0,
  kStarted = 1,
  kCompleted = 2,
  kAborted = 3,
};

/// The wire token for a record type ("accepted", ...).
std::string_view journal_type_word(JournalRecordType type);

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kAccepted;
  /// The job's cache key (lowercase hex) — the journal's identity for the
  /// job, fixed at acceptance time. Replies, retries, and replay all key
  /// on it; the client-chosen id is carried only for diagnostics.
  std::string key;
  std::string id;
  /// Raw spec text as submitted; accepted records only.
  std::string spec;
  /// Why the job will never complete; aborted records only. Newlines are
  /// sanitized to spaces on encode (the payload header is line-oriented).
  std::string reason;
};

/// Render one record in the on-disk format above.
std::string encode_journal_record(const JournalRecord& record);

/// Tally of one segment scan. Torn tails (the file ends mid-record — the
/// expected signature of a crash during append) are separate from corrupt
/// records (checksum or format violations with more data behind them);
/// only the latter trigger a resync search for the next record boundary.
struct JournalScanStats {
  std::size_t records = 0;
  std::size_t corrupt_records = 0;
  std::size_t resyncs = 0;
  bool torn_tail = false;
};

/// Scan one segment's bytes, appending every sound record to `out` in file
/// order. Tolerates arbitrary damage: a torn tail stops the scan quietly, a
/// corrupt record is skipped by resyncing to the next `\nqwal1 ` boundary
/// so one flipped bit never takes down the records behind it. Never throws.
void scan_journal_segment(std::string_view bytes, std::vector<JournalRecord>* out,
                          JournalScanStats* stats);

/// One job the journal proves was accepted but never finished.
struct RecoveredJob {
  std::string key;
  std::string id;
  std::string spec;
};

/// The digested state of a journal directory after a full replay scan.
struct JournalRecovery {
  /// Jobs to re-enqueue, in journal order (first-accepted order across
  /// segments sorted by name). Deduplicated by key; terminal records are
  /// absorbing, so a completed/aborted job never reappears here no matter
  /// how records are duplicated or reordered by compaction.
  std::vector<RecoveredJob> incomplete;
  /// Keys with a terminal completed record (served from cache on replay).
  std::size_t completed_jobs = 0;
  std::size_t aborted_jobs = 0;
  std::size_t accepted_jobs = 0;  // distinct accepted keys seen
  std::size_t segments = 0;
  std::size_t records = 0;
  std::size_t corrupt_records = 0;
  std::size_t resyncs = 0;
  std::size_t torn_tails = 0;
  /// Structured diagnoses (orphaned lifecycle records, unreadable
  /// segments), ready for the daemon's stderr via Diagnosis::to_string.
  std::vector<recover::Diagnosis> diagnostics;

  /// True iff `key` reached a terminal state (completed or aborted).
  bool is_terminal(const std::string& key) const;

 private:
  friend JournalRecovery recover_journal(const std::string& dir);
  std::map<std::string, bool> terminal_;  // key -> reached terminal state
};

/// Replay every segment in `dir` (missing or empty dir = empty recovery).
/// Never throws; damage becomes counters and diagnostics.
JournalRecovery recover_journal(const std::string& dir);

/// Rewrite the whole directory down to (at most) one fresh segment holding
/// only the accepted records of still-incomplete jobs, via tmp-then-rename,
/// then delete the superseded segments. A crash at any point leaves a
/// recoverable superset (duplicate accepted records are idempotent and
/// terminal records are absorbing). Returns segments removed.
std::size_t compact_journal(const std::string& dir, const JournalRecovery& recovery);

struct JournalConfig {
  std::string dir;
  /// Rotate the active segment once it exceeds this many bytes.
  std::size_t rotate_bytes = 1 << 20;
  /// Compact once more than this many closed segments accumulate.
  std::size_t max_segments = 4;
  /// fsync after every record: survives power loss, not just SIGKILL.
  /// Off by default — the crash gate only requires process-death
  /// durability, which buffered appends already give via the page cache.
  bool fsync_each_record = false;
};

/// The append side: one writer per daemon, thread-safe (workers append
/// started/completed concurrently with the reactor's accepted records).
class Journal {
 public:
  explicit Journal(JournalConfig config);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Seed the in-memory live set with jobs recovered as incomplete, so a
  /// runtime compaction preserves their accepted records. Call once,
  /// before the first append.
  void seed_live(const std::vector<RecoveredJob>& jobs);

  /// Append one record. Never throws, never blocks on anything but local
  /// file I/O; on failure the journal degrades to non-durable mode (see
  /// file comment) and the append is counted as dropped.
  void append(const JournalRecord& record);

  /// False once an I/O failure demoted the journal to non-durable mode.
  bool durable() const;

  struct Stats {
    std::size_t appends = 0;        // records durably appended
    std::size_t dropped = 0;        // appends skipped in degraded mode
    std::size_t io_errors = 0;      // failures observed (degrade + later)
    std::size_t rotations = 0;      // active-segment rollovers
    std::size_t compactions = 0;    // runtime compaction passes
    std::size_t bytes_appended = 0;
    bool degraded = false;
  };
  Stats stats() const;

  /// journal.* counters, Store-style.
  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  bool write_all_locked(std::string_view bytes);
  bool open_segment_locked();
  void rotate_locked();
  void compact_closed_locked();
  void degrade_locked(const char* what);

  JournalConfig config_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::uint64_t next_seq_ = 1;  // next unused segment sequence number
  std::string active_path_;
  std::size_t active_bytes_ = 0;
  std::vector<std::string> closed_;  // closed segment paths, oldest first
  /// key -> (id, spec) for accepted-but-not-terminal jobs; what a
  /// compaction must rewrite.
  std::map<std::string, std::pair<std::string, std::string>> live_;
  Stats stats_;
};

}  // namespace qcongest::serve
