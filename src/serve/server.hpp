#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/serve/frame.hpp"
#include "src/serve/service.hpp"

namespace qcongest::serve {

struct ServerConfig {
  /// Listen address. Loopback by default — qcongestd is a local simulation
  /// service, not an internet-facing one.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port (see Server::port after start()).
  std::uint16_t port = 0;
  /// Concurrent connections; one past the cap is told so and closed.
  std::size_t max_connections = 64;
  /// Frame payload cap handed to each connection's FrameReader.
  std::size_t max_frame_payload = kMaxPayload;
  ServiceConfig service;
};

/// The qcongestd network front end: a single-threaded poll() reactor (the
/// monotone netsync serve-loop idiom) over the Service. The reactor thread
/// owns every socket and all connection state; pool workers finishing jobs
/// hand replies over via a locked queue plus a self-pipe wakeup, and never
/// touch a socket themselves.
///
/// Robustness:
///  - framing violations (bad magic/version/type, oversized length,
///    truncation) get a best-effort kError frame and a clean teardown of
///    that connection only — parser state is per-connection, so nothing
///    leaks across tenants;
///  - a slow or dead client only ever stalls its own connection: writes
///    are buffered per connection and flushed as POLLOUT allows, reads are
///    nonblocking, and the reactor never blocks on any one peer;
///  - replies addressed to a connection that vanished are dropped;
///  - a kShutdown frame (or request_stop from a signal handler) stops
///    accepting, lets admitted jobs finish, flushes every reply, then
///    returns from run().
class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind and listen. False (with *error) on failure.
  bool start(std::string* error);

  /// The port actually bound (after start; meaningful with config port 0).
  std::uint16_t port() const { return bound_port_; }

  /// Serve until shutdown. Call start() first.
  void run();

  /// Async-signal-safe-ish stop request: sets a flag and pokes the
  /// self-pipe; run() notices on its next wakeup. Callable from any thread
  /// (the signal handler in tools/qcongestd calls it).
  void request_stop();

  struct Stats {
    std::size_t connections_accepted = 0;
    std::size_t connections_rejected = 0;  // over max_connections
    std::size_t frames_received = 0;
    std::size_t protocol_errors = 0;  // connections torn down for framing
  };
  Stats stats() const { return stats_; }
  Service& service() { return *service_; }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t serial = 0;
    FrameReader reader;
    std::string out;            // bytes queued for the peer
    std::size_t out_offset = 0; // flushed prefix of out
    bool closing = false;       // flush out, then close

    explicit Connection(std::size_t max_payload) : reader(max_payload) {}
  };

  void accept_new();
  /// Read and process what the peer sent; true to keep the connection.
  bool service_input(Connection& conn);
  void handle_frame(Connection& conn, const Frame& frame);
  void queue_frame(Connection& conn, FrameType type, std::string_view payload);
  /// Flush the out buffer as far as the socket allows; false = dead peer.
  bool flush_output(Connection& conn);
  void close_connection(std::map<int, Connection>::iterator it);
  void drain_replies();
  void wake();

  ServerConfig config_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::uint64_t next_serial_ = 1;
  std::map<int, Connection> connections_;  // keyed by fd
  Stats stats_;
  /// Reactor-local shutdown state; stop_requested_ is the cross-thread
  /// trigger (signal handler / other threads), folded into stopping_ at
  /// the top of each reactor iteration.
  bool stopping_ = false;
  std::atomic<bool> stop_requested_{false};

  /// Replies finished by pool workers, awaiting the reactor. Guarded by
  /// replies_mutex_; (connection serial, encoded frame) pairs — the serial
  /// (not the fd, which the OS recycles) proves the connection is still
  /// the same one the job came from.
  std::mutex replies_mutex_;
  std::vector<std::pair<std::uint64_t, std::string>> pending_replies_;

  /// Declared last, destroyed first: ~Service drains pool workers whose
  /// completion callbacks touch replies_mutex_/pending_replies_ above, so
  /// those members must still be alive while it runs.
  std::unique_ptr<Service> service_;
};

}  // namespace qcongest::serve
