#include "src/serve/server.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace qcongest::serve {

namespace {

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      service_(std::make_unique<Service>(config_.service)) {}

Server::~Server() {
  // Drain the service first: its pool workers' completion callbacks touch
  // the reply queue, which must outlive them.
  service_.reset();
  for (auto& [fd, conn] : connections_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

bool Server::start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  };
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return fail("pipe");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  if (!set_nonblocking(wake_read_fd_) || !set_nonblocking(wake_write_fd_)) {
    return fail("fcntl(pipe)");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad bind address " + config_.bind_address;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind " + config_.bind_address + ":" +
                std::to_string(config_.port));
  }
  if (::listen(listen_fd_, 64) != 0) return fail("listen");
  if (!set_nonblocking(listen_fd_)) return fail("fcntl(listen)");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return fail("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);
  return true;
}

void Server::request_stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  wake();
}

void Server::wake() {
  // write() is async-signal-safe; a full pipe just means a wakeup is
  // already pending, which is all we need. A signal landing mid-write must
  // not eat the wakeup though — a swallowed EINTR here would stall reply
  // delivery until the poll timeout.
  char byte = 1;
  ssize_t n;
  do {
    n = ::write(wake_write_fd_, &byte, 1);
  } while (n < 0 && errno == EINTR);
}

void Server::queue_frame(Connection& conn, FrameType type,
                         std::string_view payload) {
  conn.out += encode_frame(type, payload);
}

bool Server::flush_output(Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_offset,
                       conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer is gone
  }
  if (conn.out_offset == conn.out.size() && conn.out_offset > 0) {
    conn.out.clear();
    conn.out_offset = 0;
  }
  return true;
}

void Server::handle_frame(Connection& conn, const Frame& frame) {
  ++stats_.frames_received;
  switch (frame.type) {
    case FrameType::kPing:
      queue_frame(conn, FrameType::kPong, frame.payload);
      return;
    case FrameType::kShutdown:
      stopping_ = true;
      return;
    case FrameType::kSubmit: {
      if (stopping_) {
        // Draining: structured shed, never a silently dropped submit.
        JobReply reply;
        reply.status = JobReply::Status::kRejected;
        reply.error = "shutting_down";
        reply.id = std::string("?");
        JobSpec spec;
        std::string parse_error;
        if (parse_job_spec(frame.payload, &spec, &parse_error)) reply.id = spec.id;
        queue_frame(conn, FrameType::kRejected, render_reply_payload(reply));
        return;
      }
      const std::uint64_t serial = conn.serial;
      // The callback runs on a pool worker (or inline for rejections):
      // encode the full frame there, hand it to the reactor via the locked
      // queue, and poke the self-pipe. No socket is touched off-reactor.
      service_->submit(
          frame.payload, [this, serial](const JobReply& reply) {
            const FrameType type = reply.status == JobReply::Status::kRejected
                                       ? FrameType::kRejected
                                       : FrameType::kResult;
            std::string encoded = encode_frame(type, render_reply_payload(reply));
            {
              std::lock_guard<std::mutex> lock(replies_mutex_);
              pending_replies_.emplace_back(serial, std::move(encoded));
            }
            wake();
          });
      return;
    }
    case FrameType::kResult:
    case FrameType::kRejected:
    case FrameType::kError:
    case FrameType::kPong:
      // Server-to-client types arriving at the server: protocol violation.
      ++stats_.protocol_errors;
      queue_frame(conn, FrameType::kError,
                  "protocol violation: client sent a server-only frame type");
      conn.closing = true;
      return;
  }
}

bool Server::service_input(Connection& conn) {
  char buf[16384];
  while (true) {
    ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      // Peer half-closed. Whatever is buffered is all there will ever be;
      // a partial frame is now a truncation error.
      conn.reader.finish();
      conn.closing = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // connection reset
  }

  Frame frame;
  while (true) {
    FrameReader::Result result = conn.reader.next(&frame);
    if (result == FrameReader::Result::kFrame) {
      handle_frame(conn, frame);
      continue;
    }
    if (result == FrameReader::Result::kError) {
      // Tear down cleanly with a structured reason; the poisoned reader
      // guarantees no further bytes from this peer are interpreted.
      ++stats_.protocol_errors;
      queue_frame(conn, FrameType::kError, conn.reader.error());
      conn.closing = true;
    }
    break;
  }
  return true;
}

void Server::close_connection(std::map<int, Connection>::iterator it) {
  ::close(it->second.fd);
  connections_.erase(it);
}

void Server::drain_replies() {
  std::vector<std::pair<std::uint64_t, std::string>> batch;
  {
    std::lock_guard<std::mutex> lock(replies_mutex_);
    batch.swap(pending_replies_);
  }
  for (auto& [serial, encoded] : batch) {
    // Find the (still-open) connection this job arrived on; replies to
    // closed connections are dropped — their tenant is gone.
    for (auto& [fd, conn] : connections_) {
      if (conn.serial == serial) {
        conn.out += encoded;
        break;
      }
    }
  }
}

void Server::accept_new() {
  while (true) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (connections_.size() >= config_.max_connections) {
      // Structured connection-level shed: tell the peer before closing.
      ++stats_.connections_rejected;
      std::string frame = encode_frame(FrameType::kError,
                                       "too many connections, try again later");
      [[maybe_unused]] ssize_t n =
          ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
      ::close(fd);
      continue;
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ++stats_.connections_accepted;
    Connection conn(config_.max_frame_payload);
    conn.fd = fd;
    conn.serial = next_serial_++;
    connections_.emplace(fd, std::move(conn));
  }
}

void Server::run() {
  std::vector<pollfd> fds;
  while (true) {
    if (stop_requested_.load(std::memory_order_relaxed)) stopping_ = true;

    drain_replies();

    // Shutdown barrier: no admitted job in flight and every reply flushed.
    if (stopping_) {
      bool replies_pending;
      {
        std::lock_guard<std::mutex> lock(replies_mutex_);
        replies_pending = !pending_replies_.empty();
      }
      bool output_pending = false;
      for (auto& [fd, conn] : connections_) {
        if (conn.out_offset < conn.out.size()) output_pending = true;
      }
      if (!replies_pending && !output_pending &&
          service_->stats().pending == 0) {
        break;
      }
    }

    fds.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    if (!stopping_) fds.push_back({listen_fd_, POLLIN, 0});
    for (auto& [fd, conn] : connections_) {
      // A closing connection is write-only: watching POLLIN on bytes we
      // will never read would spin the reactor hot. poll still reports
      // POLLHUP/POLLERR with no events requested.
      short events = 0;
      if (!conn.closing) events |= POLLIN;
      if (conn.out_offset < conn.out.size()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }

    // Finite timeout: a belt-and-braces liveness floor under the self-pipe
    // wakeup, and the poll granularity of the shutdown barrier above.
    int ready = ::poll(fds.data(), fds.size(), 200);
    if (ready < 0 && errno != EINTR) break;

    std::size_t index = 0;
    if (fds[index].revents & POLLIN) {
      // Drain until EAGAIN, retrying through EINTR: a signal mid-drain
      // must not leave bytes behind, or the pipe stays readable and poll
      // spins hot on a permanently-ready fd.
      char drain[256];
      while (true) {
        ssize_t n = ::read(wake_read_fd_, drain, sizeof(drain));
        if (n > 0) continue;
        if (n < 0 && errno == EINTR) continue;
        break;  // EAGAIN (empty) or a dead pipe; both end the drain
      }
    }
    ++index;
    if (!stopping_) {
      if (fds[index].revents & (POLLIN | POLLERR)) accept_new();
      ++index;
    }

    // Snapshot the fds the pollfd list was built from: connections_ can
    // shrink while we iterate.
    std::vector<int> to_close;
    for (; index < fds.size(); ++index) {
      auto it = connections_.find(fds[index].fd);
      if (it == connections_.end()) continue;
      Connection& conn = it->second;
      bool alive = true;
      if (fds[index].revents & (POLLIN | POLLHUP | POLLERR)) {
        if (!conn.closing) {
          alive = service_input(conn);
        } else if (fds[index].revents & (POLLHUP | POLLERR)) {
          alive = false;
        }
      }
      if (alive && (conn.out_offset < conn.out.size())) {
        alive = flush_output(conn);
      }
      if (!alive || (conn.closing && conn.out_offset >= conn.out.size())) {
        to_close.push_back(fds[index].fd);
      }
    }
    for (int fd : to_close) {
      auto it = connections_.find(fd);
      if (it != connections_.end()) close_connection(it);
    }
  }

  // Reactor exit: close the listen socket so no new tenants arrive during
  // teardown; remaining connections close in the destructor.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace qcongest::serve
