#include "src/serve/backoff.hpp"

namespace qcongest::serve {

namespace {

// splitmix64 finalizer — the same mixer the reliable transport's
// retransmission jitter uses (src/net/reliable.cpp).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t backoff_delay_ms(const BackoffParams& params, std::uint64_t stream,
                               std::uint64_t attempt) {
  std::uint64_t delay = params.base_ms;
  // Shift with saturation: attempt counts can exceed 63 in a long retry
  // loop and the delay must pin at the cap, not wrap.
  if (attempt >= 64 || (delay != 0 && delay > (params.cap_ms >> attempt))) {
    delay = params.cap_ms;
  } else {
    delay <<= attempt;
    if (delay > params.cap_ms) delay = params.cap_ms;
  }
  const std::uint64_t spread = delay / 4;
  if (spread > 1) {
    const std::uint64_t h = mix64(mix64(params.seed ^ (stream << 20)) ^ attempt);
    delay -= h % spread;
  }
  return delay;
}

}  // namespace qcongest::serve
