
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_data_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/apps_data_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/apps_data_test.cpp.o.d"
  "/root/repo/tests/apps_graph_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/apps_graph_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/apps_graph_test.cpp.o.d"
  "/root/repo/tests/apps_property_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/apps_property_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/apps_property_test.cpp.o.d"
  "/root/repo/tests/arithmetic_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/arithmetic_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/arithmetic_test.cpp.o.d"
  "/root/repo/tests/boosted_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/boosted_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/boosted_test.cpp.o.d"
  "/root/repo/tests/clustering_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/clustering_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/clustering_test.cpp.o.d"
  "/root/repo/tests/cut_communication_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/cut_communication_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/cut_communication_test.cpp.o.d"
  "/root/repo/tests/determinism_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/determinism_test.cpp.o.d"
  "/root/repo/tests/distribution_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/distribution_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/distribution_test.cpp.o.d"
  "/root/repo/tests/edge_cases_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/engine_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/engine_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/engine_test.cpp.o.d"
  "/root/repo/tests/even_cycle_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/even_cycle_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/even_cycle_test.cpp.o.d"
  "/root/repo/tests/failure_injection_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/failure_injection_test.cpp.o.d"
  "/root/repo/tests/framework_property_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/framework_property_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/framework_property_test.cpp.o.d"
  "/root/repo/tests/framework_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/framework_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/framework_test.cpp.o.d"
  "/root/repo/tests/gate_level_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/gate_level_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/gate_level_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/johnson_spectrum_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/johnson_spectrum_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/johnson_spectrum_test.cpp.o.d"
  "/root/repo/tests/net_property_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/net_property_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/net_property_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/quantum_property_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/quantum_property_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/quantum_property_test.cpp.o.d"
  "/root/repo/tests/quantum_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/quantum_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/quantum_test.cpp.o.d"
  "/root/repo/tests/query_algorithms_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/query_algorithms_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/query_algorithms_test.cpp.o.d"
  "/root/repo/tests/query_oracle_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/query_oracle_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/query_oracle_test.cpp.o.d"
  "/root/repo/tests/sparse_statevector_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/sparse_statevector_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/sparse_statevector_test.cpp.o.d"
  "/root/repo/tests/state_level_framework_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/state_level_framework_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/state_level_framework_test.cpp.o.d"
  "/root/repo/tests/stress_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/stress_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/stress_test.cpp.o.d"
  "/root/repo/tests/szegedy_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/szegedy_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/szegedy_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/qcongest_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/qcongest_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qcongest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
