# Empty dependencies file for qcongest_tests.
# This may be replaced when dependencies are built.
