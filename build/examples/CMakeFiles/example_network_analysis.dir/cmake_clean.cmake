file(REMOVE_RECURSE
  "CMakeFiles/example_network_analysis.dir/network_analysis.cpp.o"
  "CMakeFiles/example_network_analysis.dir/network_analysis.cpp.o.d"
  "example_network_analysis"
  "example_network_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_network_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
