# Empty compiler generated dependencies file for example_network_analysis.
# This may be replaced when dependencies are built.
