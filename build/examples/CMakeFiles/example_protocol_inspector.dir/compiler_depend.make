# Empty compiler generated dependencies file for example_protocol_inspector.
# This may be replaced when dependencies are built.
