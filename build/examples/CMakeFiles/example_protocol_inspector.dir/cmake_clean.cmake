file(REMOVE_RECURSE
  "CMakeFiles/example_protocol_inspector.dir/protocol_inspector.cpp.o"
  "CMakeFiles/example_protocol_inspector.dir/protocol_inspector.cpp.o.d"
  "example_protocol_inspector"
  "example_protocol_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_protocol_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
