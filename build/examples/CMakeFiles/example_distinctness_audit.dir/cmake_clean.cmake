file(REMOVE_RECURSE
  "CMakeFiles/example_distinctness_audit.dir/distinctness_audit.cpp.o"
  "CMakeFiles/example_distinctness_audit.dir/distinctness_audit.cpp.o.d"
  "example_distinctness_audit"
  "example_distinctness_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distinctness_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
