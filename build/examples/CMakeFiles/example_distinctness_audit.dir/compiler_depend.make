# Empty compiler generated dependencies file for example_distinctness_audit.
# This may be replaced when dependencies are built.
