# Empty dependencies file for example_meeting_scheduler.
# This may be replaced when dependencies are built.
