file(REMOVE_RECURSE
  "CMakeFiles/example_meeting_scheduler.dir/meeting_scheduler.cpp.o"
  "CMakeFiles/example_meeting_scheduler.dir/meeting_scheduler.cpp.o.d"
  "example_meeting_scheduler"
  "example_meeting_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_meeting_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
