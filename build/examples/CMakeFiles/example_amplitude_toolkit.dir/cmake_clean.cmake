file(REMOVE_RECURSE
  "CMakeFiles/example_amplitude_toolkit.dir/amplitude_toolkit.cpp.o"
  "CMakeFiles/example_amplitude_toolkit.dir/amplitude_toolkit.cpp.o.d"
  "example_amplitude_toolkit"
  "example_amplitude_toolkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_amplitude_toolkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
