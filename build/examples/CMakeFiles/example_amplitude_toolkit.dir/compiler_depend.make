# Empty compiler generated dependencies file for example_amplitude_toolkit.
# This may be replaced when dependencies are built.
