
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cycle_detection.cpp" "src/CMakeFiles/qcongest.dir/apps/cycle_detection.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/apps/cycle_detection.cpp.o.d"
  "/root/repo/src/apps/deutsch_jozsa.cpp" "src/CMakeFiles/qcongest.dir/apps/deutsch_jozsa.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/apps/deutsch_jozsa.cpp.o.d"
  "/root/repo/src/apps/eccentricity.cpp" "src/CMakeFiles/qcongest.dir/apps/eccentricity.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/apps/eccentricity.cpp.o.d"
  "/root/repo/src/apps/element_distinctness.cpp" "src/CMakeFiles/qcongest.dir/apps/element_distinctness.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/apps/element_distinctness.cpp.o.d"
  "/root/repo/src/apps/even_cycle.cpp" "src/CMakeFiles/qcongest.dir/apps/even_cycle.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/apps/even_cycle.cpp.o.d"
  "/root/repo/src/apps/girth.cpp" "src/CMakeFiles/qcongest.dir/apps/girth.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/apps/girth.cpp.o.d"
  "/root/repo/src/apps/meeting_scheduling.cpp" "src/CMakeFiles/qcongest.dir/apps/meeting_scheduling.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/apps/meeting_scheduling.cpp.o.d"
  "/root/repo/src/apps/twoparty.cpp" "src/CMakeFiles/qcongest.dir/apps/twoparty.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/apps/twoparty.cpp.o.d"
  "/root/repo/src/framework/distributed_oracle.cpp" "src/CMakeFiles/qcongest.dir/framework/distributed_oracle.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/framework/distributed_oracle.cpp.o.d"
  "/root/repo/src/framework/distributed_state.cpp" "src/CMakeFiles/qcongest.dir/framework/distributed_state.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/framework/distributed_state.cpp.o.d"
  "/root/repo/src/framework/non_oracle.cpp" "src/CMakeFiles/qcongest.dir/framework/non_oracle.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/framework/non_oracle.cpp.o.d"
  "/root/repo/src/net/bfs.cpp" "src/CMakeFiles/qcongest.dir/net/bfs.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/net/bfs.cpp.o.d"
  "/root/repo/src/net/clustering.cpp" "src/CMakeFiles/qcongest.dir/net/clustering.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/net/clustering.cpp.o.d"
  "/root/repo/src/net/engine.cpp" "src/CMakeFiles/qcongest.dir/net/engine.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/net/engine.cpp.o.d"
  "/root/repo/src/net/generators.cpp" "src/CMakeFiles/qcongest.dir/net/generators.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/net/generators.cpp.o.d"
  "/root/repo/src/net/graph.cpp" "src/CMakeFiles/qcongest.dir/net/graph.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/net/graph.cpp.o.d"
  "/root/repo/src/net/multi_bfs.cpp" "src/CMakeFiles/qcongest.dir/net/multi_bfs.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/net/multi_bfs.cpp.o.d"
  "/root/repo/src/net/pipeline.cpp" "src/CMakeFiles/qcongest.dir/net/pipeline.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/net/pipeline.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/CMakeFiles/qcongest.dir/net/trace.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/net/trace.cpp.o.d"
  "/root/repo/src/quantum/arithmetic.cpp" "src/CMakeFiles/qcongest.dir/quantum/arithmetic.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/quantum/arithmetic.cpp.o.d"
  "/root/repo/src/quantum/circuit.cpp" "src/CMakeFiles/qcongest.dir/quantum/circuit.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/quantum/circuit.cpp.o.d"
  "/root/repo/src/quantum/gates.cpp" "src/CMakeFiles/qcongest.dir/quantum/gates.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/quantum/gates.cpp.o.d"
  "/root/repo/src/quantum/oracle.cpp" "src/CMakeFiles/qcongest.dir/quantum/oracle.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/quantum/oracle.cpp.o.d"
  "/root/repo/src/quantum/qft.cpp" "src/CMakeFiles/qcongest.dir/quantum/qft.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/quantum/qft.cpp.o.d"
  "/root/repo/src/quantum/qudit.cpp" "src/CMakeFiles/qcongest.dir/quantum/qudit.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/quantum/qudit.cpp.o.d"
  "/root/repo/src/quantum/sparse_statevector.cpp" "src/CMakeFiles/qcongest.dir/quantum/sparse_statevector.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/quantum/sparse_statevector.cpp.o.d"
  "/root/repo/src/quantum/statevector.cpp" "src/CMakeFiles/qcongest.dir/quantum/statevector.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/quantum/statevector.cpp.o.d"
  "/root/repo/src/quantum/szegedy.cpp" "src/CMakeFiles/qcongest.dir/quantum/szegedy.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/quantum/szegedy.cpp.o.d"
  "/root/repo/src/query/bbht.cpp" "src/CMakeFiles/qcongest.dir/query/bbht.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/query/bbht.cpp.o.d"
  "/root/repo/src/query/boosted.cpp" "src/CMakeFiles/qcongest.dir/query/boosted.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/query/boosted.cpp.o.d"
  "/root/repo/src/query/deutsch_jozsa.cpp" "src/CMakeFiles/qcongest.dir/query/deutsch_jozsa.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/query/deutsch_jozsa.cpp.o.d"
  "/root/repo/src/query/element_distinctness.cpp" "src/CMakeFiles/qcongest.dir/query/element_distinctness.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/query/element_distinctness.cpp.o.d"
  "/root/repo/src/query/gate_level.cpp" "src/CMakeFiles/qcongest.dir/query/gate_level.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/query/gate_level.cpp.o.d"
  "/root/repo/src/query/grover_math.cpp" "src/CMakeFiles/qcongest.dir/query/grover_math.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/query/grover_math.cpp.o.d"
  "/root/repo/src/query/mean_estimation.cpp" "src/CMakeFiles/qcongest.dir/query/mean_estimation.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/query/mean_estimation.cpp.o.d"
  "/root/repo/src/query/oracle.cpp" "src/CMakeFiles/qcongest.dir/query/oracle.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/query/oracle.cpp.o.d"
  "/root/repo/src/query/parallel_grover.cpp" "src/CMakeFiles/qcongest.dir/query/parallel_grover.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/query/parallel_grover.cpp.o.d"
  "/root/repo/src/query/parallel_minfind.cpp" "src/CMakeFiles/qcongest.dir/query/parallel_minfind.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/query/parallel_minfind.cpp.o.d"
  "/root/repo/src/util/combinatorics.cpp" "src/CMakeFiles/qcongest.dir/util/combinatorics.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/util/combinatorics.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/qcongest.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/qcongest.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/qcongest.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
