file(REMOVE_RECURSE
  "libqcongest.a"
)
