file(REMOVE_RECURSE
  "CMakeFiles/qcongest_cli.dir/qcongest_cli.cpp.o"
  "CMakeFiles/qcongest_cli.dir/qcongest_cli.cpp.o.d"
  "qcongest_cli"
  "qcongest_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcongest_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
