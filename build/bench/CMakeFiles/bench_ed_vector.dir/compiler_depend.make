# Empty compiler generated dependencies file for bench_ed_vector.
# This may be replaced when dependencies are built.
