file(REMOVE_RECURSE
  "CMakeFiles/bench_ed_vector.dir/bench_ed_vector.cpp.o"
  "CMakeFiles/bench_ed_vector.dir/bench_ed_vector.cpp.o.d"
  "bench_ed_vector"
  "bench_ed_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ed_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
