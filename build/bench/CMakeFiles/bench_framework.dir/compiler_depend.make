# Empty compiler generated dependencies file for bench_framework.
# This may be replaced when dependencies are built.
