# Empty compiler generated dependencies file for bench_boosting.
# This may be replaced when dependencies are built.
