file(REMOVE_RECURSE
  "CMakeFiles/bench_boosting.dir/bench_boosting.cpp.o"
  "CMakeFiles/bench_boosting.dir/bench_boosting.cpp.o.d"
  "bench_boosting"
  "bench_boosting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_boosting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
