# Empty compiler generated dependencies file for bench_meeting_scheduling.
# This may be replaced when dependencies are built.
