file(REMOVE_RECURSE
  "CMakeFiles/bench_meeting_scheduling.dir/bench_meeting_scheduling.cpp.o"
  "CMakeFiles/bench_meeting_scheduling.dir/bench_meeting_scheduling.cpp.o.d"
  "bench_meeting_scheduling"
  "bench_meeting_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_meeting_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
