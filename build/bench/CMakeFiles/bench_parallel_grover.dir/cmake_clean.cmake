file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_grover.dir/bench_parallel_grover.cpp.o"
  "CMakeFiles/bench_parallel_grover.dir/bench_parallel_grover.cpp.o.d"
  "bench_parallel_grover"
  "bench_parallel_grover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_grover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
