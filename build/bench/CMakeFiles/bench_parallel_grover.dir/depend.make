# Empty dependencies file for bench_parallel_grover.
# This may be replaced when dependencies are built.
