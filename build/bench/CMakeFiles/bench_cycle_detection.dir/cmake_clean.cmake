file(REMOVE_RECURSE
  "CMakeFiles/bench_cycle_detection.dir/bench_cycle_detection.cpp.o"
  "CMakeFiles/bench_cycle_detection.dir/bench_cycle_detection.cpp.o.d"
  "bench_cycle_detection"
  "bench_cycle_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cycle_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
