# Empty compiler generated dependencies file for bench_girth.
# This may be replaced when dependencies are built.
