file(REMOVE_RECURSE
  "CMakeFiles/bench_non_oracle.dir/bench_non_oracle.cpp.o"
  "CMakeFiles/bench_non_oracle.dir/bench_non_oracle.cpp.o.d"
  "bench_non_oracle"
  "bench_non_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_non_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
