# Empty compiler generated dependencies file for bench_non_oracle.
# This may be replaced when dependencies are built.
