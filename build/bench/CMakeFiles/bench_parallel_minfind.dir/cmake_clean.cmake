file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_minfind.dir/bench_parallel_minfind.cpp.o"
  "CMakeFiles/bench_parallel_minfind.dir/bench_parallel_minfind.cpp.o.d"
  "bench_parallel_minfind"
  "bench_parallel_minfind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_minfind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
