# Empty dependencies file for bench_parallel_minfind.
# This may be replaced when dependencies are built.
