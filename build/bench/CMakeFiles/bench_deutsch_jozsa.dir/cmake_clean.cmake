file(REMOVE_RECURSE
  "CMakeFiles/bench_deutsch_jozsa.dir/bench_deutsch_jozsa.cpp.o"
  "CMakeFiles/bench_deutsch_jozsa.dir/bench_deutsch_jozsa.cpp.o.d"
  "bench_deutsch_jozsa"
  "bench_deutsch_jozsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deutsch_jozsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
