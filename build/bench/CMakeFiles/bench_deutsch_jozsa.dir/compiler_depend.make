# Empty compiler generated dependencies file for bench_deutsch_jozsa.
# This may be replaced when dependencies are built.
