# Empty compiler generated dependencies file for bench_state_distribution.
# This may be replaced when dependencies are built.
