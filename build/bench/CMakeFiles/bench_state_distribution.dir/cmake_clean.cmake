file(REMOVE_RECURSE
  "CMakeFiles/bench_state_distribution.dir/bench_state_distribution.cpp.o"
  "CMakeFiles/bench_state_distribution.dir/bench_state_distribution.cpp.o.d"
  "bench_state_distribution"
  "bench_state_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
