file(REMOVE_RECURSE
  "CMakeFiles/bench_mean_estimation.dir/bench_mean_estimation.cpp.o"
  "CMakeFiles/bench_mean_estimation.dir/bench_mean_estimation.cpp.o.d"
  "bench_mean_estimation"
  "bench_mean_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mean_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
