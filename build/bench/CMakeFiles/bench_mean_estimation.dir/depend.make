# Empty dependencies file for bench_mean_estimation.
# This may be replaced when dependencies are built.
