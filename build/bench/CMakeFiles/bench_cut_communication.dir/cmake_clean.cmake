file(REMOVE_RECURSE
  "CMakeFiles/bench_cut_communication.dir/bench_cut_communication.cpp.o"
  "CMakeFiles/bench_cut_communication.dir/bench_cut_communication.cpp.o.d"
  "bench_cut_communication"
  "bench_cut_communication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cut_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
