# Empty compiler generated dependencies file for bench_cut_communication.
# This may be replaced when dependencies are built.
