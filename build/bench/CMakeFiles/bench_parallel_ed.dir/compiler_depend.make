# Empty compiler generated dependencies file for bench_parallel_ed.
# This may be replaced when dependencies are built.
