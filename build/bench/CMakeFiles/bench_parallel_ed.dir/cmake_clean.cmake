file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_ed.dir/bench_parallel_ed.cpp.o"
  "CMakeFiles/bench_parallel_ed.dir/bench_parallel_ed.cpp.o.d"
  "bench_parallel_ed"
  "bench_parallel_ed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_ed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
