# Empty compiler generated dependencies file for bench_ed_nodes.
# This may be replaced when dependencies are built.
