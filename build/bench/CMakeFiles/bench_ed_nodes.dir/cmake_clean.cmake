file(REMOVE_RECURSE
  "CMakeFiles/bench_ed_nodes.dir/bench_ed_nodes.cpp.o"
  "CMakeFiles/bench_ed_nodes.dir/bench_ed_nodes.cpp.o.d"
  "bench_ed_nodes"
  "bench_ed_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ed_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
