# Empty dependencies file for bench_diameter_radius.
# This may be replaced when dependencies are built.
