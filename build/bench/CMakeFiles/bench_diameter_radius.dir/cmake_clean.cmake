file(REMOVE_RECURSE
  "CMakeFiles/bench_diameter_radius.dir/bench_diameter_radius.cpp.o"
  "CMakeFiles/bench_diameter_radius.dir/bench_diameter_radius.cpp.o.d"
  "bench_diameter_radius"
  "bench_diameter_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diameter_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
