# Empty dependencies file for bench_avg_eccentricity.
# This may be replaced when dependencies are built.
