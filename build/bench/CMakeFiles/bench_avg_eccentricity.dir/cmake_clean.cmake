file(REMOVE_RECURSE
  "CMakeFiles/bench_avg_eccentricity.dir/bench_avg_eccentricity.cpp.o"
  "CMakeFiles/bench_avg_eccentricity.dir/bench_avg_eccentricity.cpp.o.d"
  "bench_avg_eccentricity"
  "bench_avg_eccentricity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_avg_eccentricity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
