// E9 — Corollary 14 vs Lemma 15: element distinctness between nodes.
//
// Reproduces: quantum O((n^{2/3} D^{1/3} + D) ceil(log N / log n)) vs the
// classical gather (Theta(n)) on the two-star reduction gadget.

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/apps/element_distinctness.hpp"
#include "src/apps/twoparty.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::apps;

void BM_EdNodesQuantumVsClassical(benchmark::State& state) {
  const auto set_size = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  auto gadget = distinctness_nodes_gadget(set_size, true, rng);
  const double n = static_cast<double>(gadget.graph.num_nodes());
  const double d = static_cast<double>(gadget.graph.diameter());

  double quantum = 0, classical = 0;
  int successes = 0, trials = 0;
  for (auto _ : state) {
    classical = static_cast<double>(
        element_distinctness_nodes_classical(gadget.graph, gadget.values,
                                             gadget.value_range)
            .cost.rounds);
    quantum = bench::median_of(5, [&] {
      auto result = element_distinctness_nodes_quantum(gadget.graph, gadget.values,
                                                       gadget.value_range, rng);
      ++trials;
      if (result.collision.has_value()) ++successes;
      return static_cast<double>(result.cost.rounds);
    });
  }
  bench::report(state, quantum, std::pow(n, 2.0 / 3.0) * std::pow(d, 1.0 / 3.0) + d);
  state.counters["classical"] = classical;
  state.counters["quantum_wins"] = quantum < classical ? 1.0 : 0.0;
  state.counters["success_rate"] =
      trials > 0 ? static_cast<double>(successes) / trials : 0.0;
}
BENCHMARK(BM_EdNodesQuantumVsClassical)
    ->ArgName("set_size")
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Iterations(1);

}  // namespace
