// E11 — Lemma 21: diameter and radius in O(sqrt(n D)) rounds.
//
// Reproduces: quantum O(sqrt(n D)) vs classical Theta(n + D) (full APSP)
// measured rounds on low-diameter graphs; the success rates; and the
// radius variant the paper adds over [LM18].

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/apps/eccentricity.hpp"
#include "src/net/generators.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::apps;

net::Graph make_topology(std::size_t kind, std::size_t n, util::Rng& rng) {
  switch (kind) {
    case 0:
      return net::two_stars_graph(n / 2 - 1, n / 2 - 1, 2);  // D = 4
    case 1:
      return net::random_connected_graph(n, 3 * n, rng);     // low diameter
    default:
      return net::grid_graph(n / 8, 8);                      // D ~ n/8
  }
}

void BM_Diameter(benchmark::State& state) {
  const auto kind = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  util::Rng rng(1);
  net::Graph g = make_topology(kind, n, rng);
  const double d = static_cast<double>(g.diameter());

  double quantum = 0, classical = 0;
  int successes = 0, trials = 0;
  for (auto _ : state) {
    classical = static_cast<double>(diameter_classical(g).cost.rounds);
    quantum = bench::median_of(5, [&] {
      auto result = diameter_quantum(g, rng);
      ++trials;
      if (result.value == g.diameter()) ++successes;
      return static_cast<double>(result.cost.rounds);
    });
  }
  bench::report(state, quantum, std::sqrt(static_cast<double>(g.num_nodes()) * d));
  state.counters["classical"] = classical;
  state.counters["classical_bound"] = static_cast<double>(g.num_nodes()) + d;
  state.counters["quantum_wins"] = quantum < classical ? 1.0 : 0.0;
  state.counters["success_rate"] =
      trials > 0 ? static_cast<double>(successes) / trials : 0.0;
}
BENCHMARK(BM_Diameter)
    ->ArgNames({"topology", "n"})
    ->Args({0, 64})
    ->Args({0, 128})
    ->Args({0, 256})
    ->Args({0, 512})
    ->Args({1, 64})
    ->Args({1, 128})
    ->Args({2, 64})
    ->Iterations(1);

void BM_DiameterEchoAblation(benchmark::State& state) {
  // Ablation: the paper's literal "queried node computes its own
  // eccentricity" (Lemma 20 echo) vs letting the framework's
  // max-convergecast assemble it from raw distances.
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  net::Graph g = net::two_stars_graph(n / 2 - 1, n / 2 - 1, 2);
  double echo = 0, assembled = 0;
  for (auto _ : state) {
    echo = bench::median_of(5, [&] {
      return static_cast<double>(diameter_quantum_echo(g, rng).cost.rounds);
    });
    assembled = bench::median_of(5, [&] {
      return static_cast<double>(diameter_quantum(g, rng).cost.rounds);
    });
  }
  state.counters["echo_rounds"] = echo;
  state.counters["assembled_rounds"] = assembled;
}
BENCHMARK(BM_DiameterEchoAblation)
    ->ArgName("n")
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Iterations(1);

void BM_Radius(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  net::Graph g = net::two_stars_graph(n / 2 - 1, n / 2 - 1, 2);
  double quantum = 0, classical = 0;
  int successes = 0, trials = 0;
  for (auto _ : state) {
    classical = static_cast<double>(radius_classical(g).cost.rounds);
    quantum = bench::median_of(5, [&] {
      auto result = radius_quantum(g, rng);
      ++trials;
      if (result.value == g.radius()) ++successes;
      return static_cast<double>(result.cost.rounds);
    });
  }
  bench::report(state, quantum,
                std::sqrt(static_cast<double>(g.num_nodes()) *
                          static_cast<double>(g.diameter())));
  state.counters["classical"] = classical;
  state.counters["success_rate"] =
      trials > 0 ? static_cast<double>(successes) / trials : 0.0;
}
BENCHMARK(BM_Radius)->ArgName("n")->Arg(64)->Arg(128)->Arg(256)->Iterations(1);

}  // namespace
