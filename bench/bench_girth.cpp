// E14 — Corollary 26: girth computation.
//
// Reproduces: quantum O~(g + (gn)^{1/2 - 1/Theta(g)}) measured + charged
// rounds vs the classical Theta(n) all-sources baseline, on known-girth
// graphs; exactness of the returned girth.

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/apps/girth.hpp"
#include "src/net/generators.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::apps;

void BM_Girth(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto girth = static_cast<std::size_t>(state.range(1));
  util::Rng rng(1);
  net::Graph g = net::cycle_with_trees(girth, n, rng);

  double quantum = 0, classical = 0, iterations = 0;
  int successes = 0, trials = 0;
  for (auto _ : state) {
    classical = static_cast<double>(girth_classical(g).cost.rounds);
    quantum = bench::median_of(3, [&] {
      auto result = girth_quantum(g, 0.5, rng);
      ++trials;
      iterations = static_cast<double>(result.iterations);
      if (result.girth == std::optional<std::size_t>(girth)) ++successes;
      return static_cast<double>(result.cost.rounds);
    });
  }
  double gd = static_cast<double>(girth), nd = static_cast<double>(n);
  double exponent = 0.5 - 1.0 / (4.0 * static_cast<double>((girth + 1) / 2) + 2.0);
  bench::report(state, quantum, gd + std::pow(gd * nd, exponent));
  state.counters["classical"] = classical;
  state.counters["classical_bound"] = nd;
  state.counters["geom_iterations"] = iterations;
  state.counters["success_rate"] =
      trials > 0 ? static_cast<double>(successes) / trials : 0.0;
}
BENCHMARK(BM_Girth)
    ->ArgNames({"n", "girth"})
    ->Args({64, 3})
    ->Args({128, 3})
    ->Args({128, 5})
    ->Args({128, 8})
    ->Args({256, 5})
    ->Iterations(1);

}  // namespace
