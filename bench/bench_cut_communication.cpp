// E17 — the reduction arguments at the cut: words crossing the Alice/Bob
// bipartition of the path gadgets. The proofs of Lemmas 11/13 and Theorem
// 18 lower-bound exactly this quantity (Omega(k) classically); quantum
// protocols cross the cut O(sqrt(kD)) (meeting scheduling) or O(polylog)
// (Deutsch-Jozsa) times.

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/apps/deutsch_jozsa.hpp"
#include "src/apps/meeting_scheduling.hpp"
#include "src/apps/twoparty.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::apps;

void BM_MeetingCutWords(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 6;
  util::Rng rng(1);
  auto gadget = meeting_scheduling_gadget(k, d, true, rng);
  NetOptions options;
  options.tracked_cut = path_gadget_cut(gadget.graph.num_nodes(), d / 2);

  double classical = 0, quantum = 0;
  for (auto _ : state) {
    classical = static_cast<double>(
        meeting_scheduling_classical(gadget.graph, gadget.calendars, options)
            .cost.cut_words);
    quantum = bench::median_of(5, [&] {
      return static_cast<double>(
          meeting_scheduling_quantum(gadget.graph, gadget.calendars, rng, options)
              .cost.cut_words);
    });
  }
  bench::report(state, classical, static_cast<double>(k));
  state.counters["quantum_cut_words"] = quantum;
}
BENCHMARK(BM_MeetingCutWords)
    ->ArgName("k")
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192)
    ->Arg(32768)
    ->Iterations(1);

void BM_DeutschJozsaCutWords(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 6;
  util::Rng rng(2);
  auto gadget = deutsch_jozsa_gadget(k, d, true, rng);
  NetOptions options;
  options.tracked_cut = path_gadget_cut(gadget.graph.num_nodes(), d / 2);

  double classical = 0, quantum = 0;
  for (auto _ : state) {
    classical = static_cast<double>(
        deutsch_jozsa_classical_exact(gadget.graph, gadget.data, options)
            .cost.cut_words);
    quantum = static_cast<double>(
        deutsch_jozsa_quantum(gadget.graph, gadget.data, options).cost.cut_words);
  }
  bench::report(state, classical, static_cast<double>(k) / 2.0);
  state.counters["quantum_cut_words"] = quantum;  // flat in k: the separation
}
BENCHMARK(BM_DeutschJozsaCutWords)
    ->ArgName("k")
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Iterations(1);

}  // namespace
