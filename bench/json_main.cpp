// Shared entry point for every benchmark binary: runs the registered
// benchmarks with the usual console output, then emits a machine-readable
// BENCH_<binary>.json next to the working directory (override the directory
// with QCONGEST_BENCH_JSON_DIR). The JSON carries, per benchmark run, the
// wall-clock per iteration plus every user counter (measured / bound /
// ratio from bench::report), which is what tools/perf_gate consumes in the
// CI perf-smoke job.
//
// This replaces benchmark::benchmark_main because the library version we
// build against has no per-run name hook usable from inside a benchmark
// body; a reporter subclass is the supported way to see final run results.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) break;  // drop control chars
        out += c;
    }
  }
  return out;
}

/// Console output as usual, plus a copy of every finished run for the JSON
/// dump after the session.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<Run> collected;

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) collected.push_back(run);
    ConsoleReporter::ReportRuns(report);
  }
};

std::string binary_name(const char* argv0) {
  std::string path = argv0 != nullptr ? argv0 : "bench";
  std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

void write_json(const std::string& binary,
                const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  const char* dir = std::getenv("QCONGEST_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" : "");
  path += "BENCH_" + binary + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  out.precision(12);
  out << "{\n  \"binary\": \"" << json_escape(binary) << "\",\n";
  out << "  \"benchmarks\": [\n";
  bool first = true;
  for (const auto& run : runs) {
    if (run.error_occurred) continue;
    if (!first) out << ",\n";
    first = false;
    const double iterations = run.iterations > 0
                                  ? static_cast<double>(run.iterations)
                                  : 1.0;
    out << "    {\n";
    out << "      \"name\": \"" << json_escape(run.benchmark_name()) << "\",\n";
    out << "      \"iterations\": " << run.iterations << ",\n";
    out << "      \"real_time_ns\": " << run.real_accumulated_time * 1e9 / iterations
        << ",\n";
    out << "      \"cpu_time_ns\": " << run.cpu_accumulated_time * 1e9 / iterations;
    for (const auto& [name, counter] : run.counters) {
      out << ",\n      \"" << json_escape(name) << "\": " << counter.value;
    }
    out << "\n    }";
  }
  out << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string binary = binary_name(argc > 0 ? argv[0] : nullptr);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  write_json(binary, reporter.collected);
  benchmark::Shutdown();
  return 0;
}
