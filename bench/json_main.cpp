// Shared entry point for every benchmark binary: runs the registered
// benchmarks with the usual console output, then emits a machine-readable
// BENCH_<binary>.json next to the working directory (override the directory
// with QCONGEST_BENCH_JSON_DIR; trailing slashes are normalized away). The
// JSON carries, per benchmark run, the wall-clock per iteration plus every
// user counter (measured / bound / ratio from bench::report), which is what
// tools/perf_gate consumes in the CI perf-smoke job. Non-finite counter
// values (NaN, +-Inf) have no JSON representation and are serialized as
// null with a warning — previously they were printed raw, which produced
// documents perf_gate and python3 -m json.tool could not parse.
//
// Benchmarks that deposit run-report sections into bench::session_report()
// additionally get a REPORT_<binary>.json: a schema-versioned, fully
// deterministic document (no timings) that CI byte-compares across runs.
//
// This replaces benchmark::benchmark_main because the library version we
// build against has no per-run name hook usable from inside a benchmark
// body; a reporter subclass is the supported way to see final run results.

#include <benchmark/benchmark.h>

#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/obs/json.hpp"
#include "src/util/env.hpp"

namespace {

using qcongest::obs::json_escape;
using qcongest::obs::json_number;

/// Console output as usual, plus a copy of every finished run for the JSON
/// dump after the session.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<Run> collected;

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) collected.push_back(run);
    ConsoleReporter::ReportRuns(report);
  }
};

std::string binary_name(const char* argv0) {
  std::string path = argv0 != nullptr ? argv0 : "bench";
  std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string output_path(const std::string& file) {
  std::string dir =
      qcongest::util::env_directory(std::getenv("QCONGEST_BENCH_JSON_DIR"));
  return dir.empty() ? file : dir + "/" + file;
}

void write_json(const std::string& binary,
                const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  std::string path = output_path("BENCH_" + binary + ".json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  out << "{\n  \"schema_version\": 1,\n";
  out << "  \"binary\": \"" << json_escape(binary) << "\",\n";
  out << "  \"benchmarks\": [\n";
  bool first = true;
  for (const auto& run : runs) {
    if (run.error_occurred) continue;
    if (!first) out << ",\n";
    first = false;
    const double iterations = run.iterations > 0
                                  ? static_cast<double>(run.iterations)
                                  : 1.0;
    out << "    {\n";
    out << "      \"name\": \"" << json_escape(run.benchmark_name()) << "\",\n";
    out << "      \"iterations\": " << run.iterations << ",\n";
    out << "      \"real_time_ns\": "
        << json_number(run.real_accumulated_time * 1e9 / iterations) << ",\n";
    out << "      \"cpu_time_ns\": "
        << json_number(run.cpu_accumulated_time * 1e9 / iterations);
    for (const auto& [name, counter] : run.counters) {
      if (!std::isfinite(counter.value)) {
        std::cerr << "warning: " << run.benchmark_name() << ": counter '" << name
                  << "' is non-finite (" << counter.value
                  << "); serialized as null\n";
      }
      out << ",\n      \"" << json_escape(name)
          << "\": " << json_number(counter.value);
    }
    out << "\n    }";
  }
  out << "\n  ]\n}\n";
}

void write_report(const std::string& binary) {
  qcongest::obs::RunReport& report = qcongest::bench::session_report();
  if (report.empty()) return;
  report.set_producer(binary);
  std::string path = output_path("REPORT_" + binary + ".json");
  std::string error;
  if (!report.write(path, &error)) {
    std::cerr << "warning: " << error << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string binary = binary_name(argc > 0 ? argv[0] : nullptr);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  write_json(binary, reporter.collected);
  write_report(binary);
  benchmark::Shutdown();
  return 0;
}
