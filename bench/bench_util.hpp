#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/obs/run_report.hpp"
#include "src/util/env.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

namespace qcongest::bench {

/// Trial-level parallelism knob for median_of: QCONGEST_BENCH_THREADS in the
/// environment (default 1 = serial). One process-wide pool, sized once.
/// Values that fail strict parsing (garbage, zero, negatives, overflow) are
/// rejected with a warning instead of being silently treated as serial.
inline util::ThreadPool& trial_pool() {
  static util::ThreadPool pool([] {
    std::string warning;
    std::size_t threads = util::env_thread_count(
        std::getenv("QCONGEST_BENCH_THREADS"), 1, &warning);
    if (!warning.empty()) {
      std::fprintf(stderr, "warning: QCONGEST_BENCH_THREADS %s\n", warning.c_str());
    }
    return threads;
  }());
  return pool;
}

/// Median of `trials` runs of `f` (each returning a measured quantity).
/// Even trial counts average the two middle elements (util::median) — the
/// upper-middle shortcut used previously biased every even-count median
/// upward.
inline double median_of(int trials, const std::function<double()>& f) {
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) values.push_back(f());
  return util::median(std::move(values));
}

/// Indexed overload: trial t computes f(t), and independent trials fan out
/// across trial_pool() (QCONGEST_BENCH_THREADS). Each trial must be
/// self-contained — build its own engine and fork its own RNG from t — so
/// the reported median is the same for any thread count.
inline double median_of(int trials, const std::function<double(int)>& f) {
  std::vector<double> values(static_cast<std::size_t>(trials), 0.0);
  trial_pool().parallel_for(values.size(), [&](std::size_t t) {
    values[t] = f(static_cast<int>(t));
  });
  return util::median(std::move(values));
}

/// Standard counter triple: the measured quantity, the paper's predicted
/// bound, and their ratio (which should stay roughly constant across a
/// sweep if the shape matches).
inline void report(benchmark::State& state, double measured, double bound) {
  state.counters["measured"] = measured;
  state.counters["bound"] = bound;
  state.counters["ratio"] = bound > 0 ? measured / bound : 0.0;
}

/// Process-wide run-report store. Benchmark bodies deposit sections
/// (per-round series, phase spans, deterministic counters — never
/// wall-clock time); bench/json_main.cpp writes the accumulated document
/// to REPORT_<binary>.json after the session. Deliberately separate from
/// BENCH_<binary>.json, which carries timings and is therefore not
/// byte-reproducible.
inline obs::RunReport& session_report() {
  static obs::RunReport report("bench");
  return report;
}

}  // namespace qcongest::bench
