#pragma once

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/util/thread_pool.hpp"

namespace qcongest::bench {

/// Trial-level parallelism knob for median_of: QCONGEST_BENCH_THREADS in the
/// environment (default 1 = serial). One process-wide pool, sized once.
inline util::ThreadPool& trial_pool() {
  static util::ThreadPool pool([] {
    const char* env = std::getenv("QCONGEST_BENCH_THREADS");
    long threads = env != nullptr ? std::strtol(env, nullptr, 10) : 1;
    return threads > 1 ? static_cast<std::size_t>(threads) : std::size_t{1};
  }());
  return pool;
}

/// Median of `trials` runs of `f` (each returning a measured quantity).
inline double median_of(int trials, const std::function<double()>& f) {
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) values.push_back(f());
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// Indexed overload: trial t computes f(t), and independent trials fan out
/// across trial_pool() (QCONGEST_BENCH_THREADS). Each trial must be
/// self-contained — build its own engine and fork its own RNG from t — so
/// the reported median is the same for any thread count.
inline double median_of(int trials, const std::function<double(int)>& f) {
  std::vector<double> values(static_cast<std::size_t>(trials), 0.0);
  trial_pool().parallel_for(values.size(), [&](std::size_t t) {
    values[t] = f(static_cast<int>(t));
  });
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// Standard counter triple: the measured quantity, the paper's predicted
/// bound, and their ratio (which should stay roughly constant across a
/// sweep if the shape matches).
inline void report(benchmark::State& state, double measured, double bound) {
  state.counters["measured"] = measured;
  state.counters["bound"] = bound;
  state.counters["ratio"] = bound > 0 ? measured / bound : 0.0;
}

}  // namespace qcongest::bench
