#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include <benchmark/benchmark.h>

namespace qcongest::bench {

/// Median of `trials` runs of `f` (each returning a measured quantity).
inline double median_of(int trials, const std::function<double()>& f) {
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) values.push_back(f());
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// Standard counter triple: the measured quantity, the paper's predicted
/// bound, and their ratio (which should stay roughly constant across a
/// sweep if the shape matches).
inline void report(benchmark::State& state, double measured, double bound) {
  state.counters["measured"] = measured;
  state.counters["bound"] = bound;
  state.counters["ratio"] = bound > 0 ? measured / bound : 0.0;
}

}  // namespace qcongest::bench
