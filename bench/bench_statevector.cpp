// E-hotpath (kernel front) — dense statevector gate throughput under the
// runtime-dispatched kernels. One dense brickwork circuit (H + T + CNOT
// layers, every target position) per qubit count, once through the active
// backend and once pinned to the scalar oracle, so the SIMD speedup is a
// single tracked ratio rather than a claim. The `speedup` counter is
// wall-clock scalar/active; `backend` encodes the dispatched Backend enum
// (0 scalar, 1 avx2, 2 neon) — on a machine with no vector ISA both run
// the same code and speedup sits at ~1.

#include <chrono>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/quantum/gates.hpp"
#include "src/quantum/kernels.hpp"
#include "src/quantum/statevector.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::quantum;

/// One brickwork layer sweep over every qubit with the given kernel table.
double run_circuit_ns(unsigned qubits, const kernels::KernelOps& ops,
                      int layers) {
  std::vector<Amplitude> amps(std::size_t{1} << qubits, Amplitude{0, 0});
  amps[0] = Amplitude{1, 0};
  const auto h = gates::hadamard();
  const auto t = gates::t();
  const auto x = gates::pauli_x();
  auto c = [](const Gate1& g) {
    return kernels::Gate1Coeffs{g(0, 0), g(0, 1), g(1, 0), g(1, 1)};
  };
  const auto start = std::chrono::steady_clock::now();
  for (int layer = 0; layer < layers; ++layer) {
    for (unsigned q = 0; q < qubits; ++q) {
      ops.apply_pairs(amps.data(), amps.size(), std::size_t{1} << q, c(h));
    }
    for (unsigned q = 0; q < qubits; ++q) {
      ops.apply_pairs(amps.data(), amps.size(), std::size_t{1} << q, c(t));
    }
    for (unsigned q = 0; q + 1 < qubits; ++q) {
      ops.apply_pairs_controlled(amps.data(), amps.size(),
                                 std::size_t{1} << (q + 1), c(x),
                                 BasisState{1} << q);
    }
  }
  const auto end = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(amps.data());
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
}

void BM_DenseGateKernels(benchmark::State& state) {
  const auto qubits = static_cast<unsigned>(state.range(0));
  const int layers = 8;
  double active_ns = 0, scalar_ns = 0;
  for (auto _ : state) {
    active_ns = bench::median_of(5, [&] {
      return run_circuit_ns(qubits, kernels::active_ops(), layers);
    });
    scalar_ns = bench::median_of(5, [&] {
      return run_circuit_ns(qubits, kernels::scalar_ops(), layers);
    });
  }
  state.counters["active_ns"] = active_ns;
  state.counters["scalar_ns"] = scalar_ns;
  state.counters["speedup"] = scalar_ns > 0 ? scalar_ns / active_ns : 0.0;
  state.counters["backend"] =
      static_cast<double>(static_cast<int>(kernels::active_backend()));
}
BENCHMARK(BM_DenseGateKernels)
    ->ArgName("qubits")
    ->Arg(10)
    ->Arg(14)
    ->Arg(18)
    ->Iterations(1);

}  // namespace
