// E-recover — the recovery tax: measured cost of surviving a
// crash-with-amnesia window (src/recover) relative to the fault-free run
// and to a with-state restart of the same schedule.
//
// Two knobs. The checkpoint cadence (CheckpointPolicy::every_rounds, with
// 0 = checkpoint only at phase start, forcing a full replay from round 0)
// trades steady-state checkpointing work against the length of the
// neighbor-assisted replay a wipe triggers; the sweep should show
// recovery_words shrinking as checkpoints get denser. The amnesia flag
// itself isolates what the wipe costs on top of the outage: a with-state
// restart of the identical window pays zero recovery words by definition.
//
// Counters per benchmark: measured median rounds, the clean baseline
// (bench::report's bound — ratio is the round-count tax), plus the honest
// recovery counters RunResult::recovery_rounds / recovery_words.

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/net/bfs.hpp"
#include "src/net/fault.hpp"
#include "src/net/generators.hpp"
#include "src/recover/checkpoint.hpp"

namespace {

using namespace qcongest;

// Outage window in physical rounds: late enough that committed virtual
// rounds of protocol state are lost, early enough that BFS construction on
// every swept graph is still in flight when it opens (cf. tools/chaos_run).
constexpr std::size_t kCrashRound = 30;
constexpr std::size_t kRestartRound = 60;

net::FaultPlan outage(net::NodeId victim, bool amnesia) {
  net::FaultPlan plan;
  plan.crashes.push_back(net::CrashEvent{victim, kCrashRound, kRestartRound});
  plan.crashes[0].amnesia = amnesia;
  return plan;
}

// The victim is an interior node of the heap-ordered binary tree (depth 2,
// with a subtree below it): it accumulates parent/child BFS state worth
// losing. A leaf wiped in the same window restores a checkpoint that is
// already current and pays no replay at all — true, but a boring benchmark.
constexpr net::NodeId kVictim = 3;

net::Engine make_engine(const net::Graph& graph, std::uint64_t seed,
                        bool amnesia, std::size_t every_rounds) {
  net::Engine engine(graph, 1, seed);
  engine.set_fault_plan(outage(kVictim, amnesia));
  engine.set_transport(net::Transport::kReliable);
  recover::RecoveryPolicy recovery;
  recovery.enabled = true;
  recovery.checkpoint.every_rounds = every_rounds;
  engine.set_recovery(recovery);
  return engine;
}

struct Tax {
  double rounds = 0;
  double recovery_rounds = 0;
  double recovery_words = 0;
};

/// Median rounds (and the matching trial's recovery counters) of five BFS
/// builds under the amnesia outage. Per-trial seeds derive from the trial
/// index so median_of can fan trials out (QCONGEST_BENCH_THREADS).
Tax measure_bfs(const net::Graph& graph, bool amnesia, std::size_t every_rounds) {
  Tax tax;
  std::vector<net::RunResult> costs(5);
  tax.rounds = bench::median_of(5, [&](int t) {
    net::Engine engine =
        make_engine(graph, static_cast<std::uint64_t>(t) + 1, amnesia, every_rounds);
    costs[static_cast<std::size_t>(t)] = net::build_bfs_tree(engine, 0).cost;
    return static_cast<double>(costs[static_cast<std::size_t>(t)].rounds);
  });
  const net::RunResult& mid = costs[costs.size() / 2];
  tax.recovery_rounds = static_cast<double>(mid.recovery_rounds);
  tax.recovery_words = static_cast<double>(mid.recovery_words);
  return tax;
}

double clean_bfs_rounds(const net::Graph& graph) {
  net::Engine engine(graph, 1, 1);
  engine.set_transport(net::Transport::kReliable);
  return static_cast<double>(net::build_bfs_tree(engine, 0).cost.rounds);
}

void BM_RecoveryTaxBfs(benchmark::State& state) {
  const auto every_rounds = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  net::Graph g = net::binary_tree(n);
  Tax tax;
  for (auto _ : state) tax = measure_bfs(g, /*amnesia=*/true, every_rounds);
  bench::report(state, tax.rounds, clean_bfs_rounds(g));
  state.counters["recovery_rounds"] = tax.recovery_rounds;
  state.counters["recovery_words"] = tax.recovery_words;
}
BENCHMARK(BM_RecoveryTaxBfs)
    ->ArgNames({"ckpt_every", "n"})
    ->Args({0, 31})  // phase-start checkpoint only: full replay from round 0
    ->Args({1, 31})
    ->Args({2, 31})
    ->Args({4, 31})
    ->Args({2, 63});

void BM_RecoveryAmnesiaVsStateful(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  net::Graph g = net::binary_tree(n);
  Tax tax;
  for (auto _ : state) tax = measure_bfs(g, /*amnesia=*/true, /*every_rounds=*/2);
  // The bound here is the with-state restart of the same outage, not the
  // fault-free run: the ratio isolates the amnesia surcharge.
  Tax stateful = measure_bfs(g, /*amnesia=*/false, /*every_rounds=*/2);
  bench::report(state, tax.rounds, stateful.rounds);
  state.counters["recovery_rounds"] = tax.recovery_rounds;
  state.counters["recovery_words"] = tax.recovery_words;
}
BENCHMARK(BM_RecoveryAmnesiaVsStateful)->ArgNames({"n"})->Arg(31)->Arg(63);

}  // namespace
