// E13 — Lemmas 23 and 25: detecting cycles of length at most k.
//
// Reproduces: quantum O(D + (Dn)^{1/2 - 1/(4 ceil(k/2)+2)}) measured rounds,
// the clustered (diameter-free) variant, the classical all-sources baseline
// (the Omega(sqrt n) regime), and the beta ablation of the light/heavy
// threshold.

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/apps/cycle_detection.hpp"
#include "src/apps/even_cycle.hpp"
#include "src/apps/girth.hpp"
#include "src/net/generators.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::apps;

void BM_CycleDetection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  util::Rng rng(1);
  net::Graph g = net::cycle_with_trees(4, n, rng);

  double quantum = 0;
  int successes = 0, trials = 0;
  for (auto _ : state) {
    quantum = bench::median_of(5, [&] {
      auto result = cycle_detection(g, k, rng);
      ++trials;
      if (result.cycle_length == std::optional<std::size_t>(4)) ++successes;
      return static_cast<double>(result.cost.rounds);
    });
  }
  double dn = static_cast<double>(g.diameter()) * static_cast<double>(n);
  double exponent =
      0.5 - 1.0 / (4.0 * static_cast<double>((k + 1) / 2) + 2.0);
  bench::report(state, quantum,
                static_cast<double>(g.diameter()) + std::pow(dn, exponent));
  state.counters["success_rate"] =
      trials > 0 ? static_cast<double>(successes) / trials : 0.0;
}
BENCHMARK(BM_CycleDetection)
    ->ArgNames({"n", "k"})
    ->Args({32, 4})
    ->Args({64, 4})
    ->Args({128, 4})
    ->Args({256, 4})
    ->Args({128, 6})
    ->Args({128, 8})
    ->Iterations(1);

void BM_CycleDetectionClustered(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  net::Graph g = net::cycle_with_trees(4, n, rng);
  double rounds = 0, charged = 0;
  int successes = 0, trials = 0;
  for (auto _ : state) {
    rounds = bench::median_of(3, [&] {
      auto result = cycle_detection_clustered(g, 4, rng);
      ++trials;
      charged = static_cast<double>(result.charged_rounds);
      if (result.cycle_length == std::optional<std::size_t>(4)) ++successes;
      return static_cast<double>(result.cost.rounds);
    });
  }
  double exponent = 0.5 - 1.0 / (4.0 * 2.0 + 2.0);
  bench::report(state, rounds, std::pow(4.0 * static_cast<double>(n), exponent));
  state.counters["charged_clustering"] = charged;
  state.counters["success_rate"] =
      trials > 0 ? static_cast<double>(successes) / trials : 0.0;
}
BENCHMARK(BM_CycleDetectionClustered)
    ->ArgName("n")
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Iterations(1);

void BM_ClassicalAllSourcesBaseline(benchmark::State& state) {
  // The classical comparison: every node BFSes (the Omega(sqrt n) lower
  // bound regime of [FHW12] is for girth; the straightforward upper bound
  // is Theta(n)).
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  net::Graph g = net::cycle_with_trees(4, n, rng);
  double rounds = 0;
  for (auto _ : state) {
    rounds = static_cast<double>(girth_classical(g).cost.rounds);
  }
  bench::report(state, rounds, static_cast<double>(n));
}
BENCHMARK(BM_ClassicalAllSourcesBaseline)
    ->ArgName("n")
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Iterations(1);

void BM_ExactCycleColorCoding(benchmark::State& state) {
  // Extension (Section 5.2 remark): exact-length cycle detection via color
  // coding. Reported: measured rounds and the repetition count.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto length = static_cast<std::size_t>(state.range(1));
  util::Rng rng(5);
  net::Graph g = net::grid_graph(n / 8, 8);  // grids are full of C4s
  double rounds = 0;
  int hits = 0, trials = 0;
  for (auto _ : state) {
    rounds = bench::median_of(3, [&] {
      auto result = exact_cycle_detection(g, length, rng);
      ++trials;
      if (result.found) ++hits;
      return static_cast<double>(result.cost.rounds);
    });
  }
  state.counters["rounds"] = rounds;
  state.counters["repetitions"] =
      static_cast<double>(exact_cycle_default_repetitions(length));
  state.counters["success_rate"] =
      trials > 0 ? static_cast<double>(hits) / trials : 0.0;
}
BENCHMARK(BM_ExactCycleColorCoding)
    ->ArgNames({"n", "L"})
    ->Args({32, 4})
    ->Args({64, 4})
    ->Args({128, 4})
    ->Iterations(1);

void BM_BetaAblation(benchmark::State& state) {
  // Sweep the light/heavy threshold beta around the paper's balanced value.
  const auto beta_x100 = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  net::Graph g = net::cycle_with_trees(4, 128, rng);
  double rounds = 0;
  int successes = 0, trials = 0;
  for (auto _ : state) {
    rounds = bench::median_of(3, [&] {
      auto result = cycle_detection_with_beta(g, 4,
                                              static_cast<double>(beta_x100) / 100.0,
                                              rng);
      ++trials;
      if (result.cycle_length == std::optional<std::size_t>(4)) ++successes;
      return static_cast<double>(result.cost.rounds);
    });
  }
  state.counters["rounds"] = rounds;
  state.counters["paper_beta_x100"] =
      100.0 * cycle_beta(g.num_nodes(), g.diameter(), 4);
  state.counters["success_rate"] =
      trials > 0 ? static_cast<double>(successes) / trials : 0.0;
}
BENCHMARK(BM_BetaAblation)
    ->ArgName("beta_x100")
    ->Arg(10)
    ->Arg(25)
    ->Arg(40)
    ->Arg(60)
    ->Arg(90)
    ->Iterations(1);

}  // namespace
