// E7 — Lemma 10 vs Lemma 11: meeting scheduling, quantum vs classical.
//
// Reproduces: quantum O~(sqrt(kD) + D) vs classical Theta(k + D) measured
// rounds on the two-party reduction gadget (a path of length D with the
// disjointness strings at its endpoints); the crossover in k and the
// success rate.

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/apps/meeting_scheduling.hpp"
#include "src/apps/twoparty.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::apps;

void BM_MeetingQuantumVsClassical(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  util::Rng rng(1);
  auto gadget = meeting_scheduling_gadget(k, d, true, rng);
  auto reference = meeting_scheduling_reference(gadget.calendars);

  double quantum = 0, classical = 0;
  int successes = 0, trials = 0;
  for (auto _ : state) {
    classical =
        static_cast<double>(meeting_scheduling_classical(gadget.graph, gadget.calendars)
                                .cost.rounds);
    quantum = bench::median_of(5, [&] {
      auto result = meeting_scheduling_quantum(gadget.graph, gadget.calendars, rng);
      ++trials;
      if (result.availability == reference.availability) ++successes;
      return static_cast<double>(result.cost.rounds);
    });
  }
  double kd = static_cast<double>(k), dd = static_cast<double>(d);
  bench::report(state, quantum, std::sqrt(kd * dd) + dd);
  state.counters["classical"] = classical;
  state.counters["classical_bound"] = kd + dd;
  state.counters["quantum_wins"] = quantum < classical ? 1.0 : 0.0;
  state.counters["success_rate"] =
      trials > 0 ? static_cast<double>(successes) / trials : 0.0;
}
BENCHMARK(BM_MeetingQuantumVsClassical)
    ->ArgNames({"k", "D"})
    ->Args({1024, 8})
    ->Args({4096, 8})
    ->Args({16384, 8})
    ->Args({65536, 8})
    ->Args({16384, 4})
    ->Args({16384, 16})
    ->Args({16384, 32})
    ->Iterations(1);

}  // namespace
