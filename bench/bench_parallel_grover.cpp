// E1 — Lemma 2: parallel Grover search.
//
// Reproduces: find-one batch count b = O(ceil(sqrt(k/(t p)))), find-all
// b = O(sqrt(k t / p) + t), and the subset-vs-split ablation discussed in
// the lemma's proof. Counters: measured median batches, the lemma's bound,
// and their ratio (flat ratio across the sweep = correct shape).

#include <set>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/query/oracle.hpp"
#include "src/query/parallel_grover.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::query;

std::vector<Value> random_instance(std::size_t k, std::size_t t, util::Rng& rng) {
  std::vector<Value> x(k, 0);
  std::set<std::size_t> ones;
  while (ones.size() < t) ones.insert(rng.index(k));
  for (auto i : ones) x[i] = 1;
  return x;
}

void BM_FindOne(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto t = static_cast<std::size_t>(state.range(1));
  const auto p = static_cast<std::size_t>(state.range(2));
  util::Rng rng(1);
  double measured = 0;
  for (auto _ : state) {
    measured = bench::median_of(25, [&] {
      InMemoryOracle oracle(random_instance(k, t, rng), p);
      (void)grover_find_one(oracle, [](Value v) { return v == 1; }, rng);
      return static_cast<double>(oracle.ledger().batches);
    });
  }
  double bound = std::ceil(std::sqrt(static_cast<double>(k) /
                                     static_cast<double>(t * p)));
  bench::report(state, measured, bound);
}
BENCHMARK(BM_FindOne)
    ->ArgNames({"k", "t", "p"})
    ->Args({1024, 1, 4})
    ->Args({4096, 1, 4})
    ->Args({16384, 1, 4})
    ->Args({16384, 4, 4})
    ->Args({16384, 16, 4})
    ->Args({16384, 64, 4})
    ->Args({16384, 1, 1})
    ->Args({16384, 1, 16})
    ->Args({16384, 1, 64})
    ->Iterations(1);

void BM_FindOneSplitAblation(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto t = static_cast<std::size_t>(state.range(1));
  const auto p = static_cast<std::size_t>(state.range(2));
  util::Rng rng(2);
  double subset = 0, split = 0;
  for (auto _ : state) {
    subset = bench::median_of(25, [&] {
      InMemoryOracle oracle(random_instance(k, t, rng), p);
      (void)grover_find_one(oracle, [](Value v) { return v == 1; }, rng);
      return static_cast<double>(oracle.ledger().batches);
    });
    split = bench::median_of(25, [&] {
      InMemoryOracle oracle(random_instance(k, t, rng), p);
      (void)grover_find_one_split(oracle, [](Value v) { return v == 1; }, rng);
      return static_cast<double>(oracle.ledger().batches);
    });
  }
  state.counters["subset_batches"] = subset;
  state.counters["split_batches"] = split;
}
BENCHMARK(BM_FindOneSplitAblation)
    ->ArgNames({"k", "t", "p"})
    ->Args({8192, 1, 8})
    ->Args({8192, 8, 8})
    ->Args({8192, 64, 8})
    ->Iterations(1);

void BM_FindAll(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto t = static_cast<std::size_t>(state.range(1));
  const auto p = static_cast<std::size_t>(state.range(2));
  util::Rng rng(3);
  double measured = 0;
  for (auto _ : state) {
    measured = bench::median_of(15, [&] {
      InMemoryOracle oracle(random_instance(k, t, rng), p);
      (void)grover_find_all(oracle, [](Value v) { return v == 1; }, rng);
      return static_cast<double>(oracle.ledger().batches);
    });
  }
  double bound = std::sqrt(static_cast<double>(k * t) / static_cast<double>(p)) +
                 static_cast<double>(t);
  bench::report(state, measured, bound);
}
BENCHMARK(BM_FindAll)
    ->ArgNames({"k", "t", "p"})
    ->Args({4096, 1, 4})
    ->Args({4096, 4, 4})
    ->Args({4096, 16, 4})
    ->Args({4096, 64, 4})
    ->Args({4096, 16, 16})
    ->Iterations(1);

}  // namespace
