// Infra — durability layer cost (EXPERIMENTS.md E-durable).
//
// Three numbers bound what --journal-dir charges the service:
//   1. BM_JournalAppend: the per-record write-ahead cost on the admission
//      path (encode + checksum + append, with rotation/compaction folded
//      in at realistic segment sizes).
//   2. BM_RecoveryScan: restart latency — scanning and classifying a
//      segment full of lifecycle records, the work between exec() and the
//      first replayed job.
//   3. BM_ServiceSubmitLatency: end-to-end submit -> reply latency with
//      the journal off vs on; the E-durable gate expects the on/off ratio
//      to stay under ~1.05 (journal writes are two tiny appends against a
//      full protocol simulation).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/serve/journal.hpp"
#include "src/serve/service.hpp"

namespace {

namespace fs = std::filesystem;
using namespace qcongest;
using namespace qcongest::serve;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("qcongest_bench_" + name);
  fs::remove_all(dir);
  return dir.string();
}

std::string hex_key(std::size_t i) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%032zx", i);
  return buf;
}

JournalRecord make_record(JournalRecordType type, std::size_t i) {
  JournalRecord record;
  record.type = type;
  record.key = hex_key(i);
  record.id = "job-" + std::to_string(i);
  if (type == JournalRecordType::kAccepted) {
    record.spec = "id=job-" + std::to_string(i) +
                  "\napp=bfs\nnodes=16\nseed=" + std::to_string(i) + "\n";
  }
  return record;
}

void BM_JournalAppend(benchmark::State& state) {
  const std::string dir = fresh_dir("journal_append");
  JournalConfig config;
  config.dir = dir;
  config.rotate_bytes = static_cast<std::size_t>(state.range(0));
  Journal journal(config);

  std::size_t i = 0;
  for (auto _ : state) {
    journal.append(make_record(JournalRecordType::kAccepted, i));
    journal.append(make_record(JournalRecordType::kCompleted, i));
    ++i;
  }
  const Journal::Stats stats = journal.stats();
  state.counters["appends"] = static_cast<double>(stats.appends);
  state.counters["rotations"] = static_cast<double>(stats.rotations);
  state.counters["compactions"] = static_cast<double>(stats.compactions);
  state.counters["bytes_per_job"] =
      i > 0 ? static_cast<double>(stats.bytes_appended) / static_cast<double>(i)
            : 0.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(stats.appends));
  fs::remove_all(dir);
}
BENCHMARK(BM_JournalAppend)
    ->ArgName("rotate_bytes")
    ->Arg(1 << 20)
    ->Arg(1 << 14);

void BM_RecoveryScan(benchmark::State& state) {
  const std::size_t jobs = static_cast<std::size_t>(state.range(0));
  std::string bytes;
  for (std::size_t i = 0; i < jobs; ++i) {
    bytes += encode_journal_record(make_record(JournalRecordType::kAccepted, i));
    bytes += encode_journal_record(make_record(JournalRecordType::kStarted, i));
    if (i % 4 != 0) {  // leave a quarter incomplete, like a real crash
      bytes +=
          encode_journal_record(make_record(JournalRecordType::kCompleted, i));
    }
  }

  std::size_t records = 0;
  for (auto _ : state) {
    std::vector<JournalRecord> decoded;
    JournalScanStats stats;
    scan_journal_segment(bytes, &decoded, &stats);
    records = stats.records;
    benchmark::DoNotOptimize(decoded);
  }
  state.counters["records"] = static_cast<double>(records);
  state.counters["segment_bytes"] = static_cast<double>(bytes.size());
  state.SetBytesProcessed(static_cast<std::int64_t>(
      bytes.size() * static_cast<std::size_t>(state.iterations())));
}
BENCHMARK(BM_RecoveryScan)->ArgName("jobs")->Arg(100)->Arg(1000)->Arg(10000);

void BM_ServiceSubmitLatency(benchmark::State& state) {
  const bool journaled = state.range(0) != 0;
  const std::string dir = fresh_dir("journal_service");
  ServiceConfig config;
  config.workers = 2;
  if (journaled) config.journal_dir = dir;
  Service service(config);

  std::size_t seed = 1;
  for (auto _ : state) {
    // A unique seed each round keeps every job a genuine run (no cache,
    // no in-flight coalescing), so the delta between arms is pure journal.
    const std::string spec = "id=lat-" + std::to_string(seed) +
                             "\napp=bfs\nnodes=16\nseed=" +
                             std::to_string(seed) + "\n";
    ++seed;
    std::atomic<bool> done{false};
    service.submit(spec, [&](const JobReply&) { done.store(true); });
    while (!done.load()) {
    }
  }
  state.counters["journal"] = journaled ? 1.0 : 0.0;
  state.SetItemsProcessed(state.iterations());
  fs::remove_all(dir);
}
BENCHMARK(BM_ServiceSubmitLatency)->ArgName("journal")->Arg(0)->Arg(1);

}  // namespace
