// E12 — Lemma 22: epsilon-additive average eccentricity.
//
// Reproduces: measured rounds ~ O~(D^{3/2} / epsilon) and the estimate's
// epsilon-additive accuracy.

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/apps/eccentricity.hpp"
#include "src/net/generators.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::apps;

void BM_AverageEccentricity(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double epsilon = static_cast<double>(state.range(1)) / 100.0;
  util::Rng rng(1);
  net::Graph g = net::path_graph(n);  // wide spread of eccentricities
  const double truth = g.average_eccentricity();
  const double d = static_cast<double>(g.diameter());

  double rounds = 0, abs_err = 0;
  int within = 0, trials = 0;
  for (auto _ : state) {
    rounds = bench::median_of(5, [&] {
      auto result = average_eccentricity_quantum(g, epsilon, rng);
      ++trials;
      double err = std::abs(result.estimate - truth);
      abs_err += err;
      if (err <= epsilon) ++within;
      return static_cast<double>(result.cost.rounds);
    });
  }
  double ratio = std::sqrt(d) / epsilon;
  double bound = d + std::pow(d, 1.5) / epsilon *
                         std::max(1.0, std::log2(ratio + 2.0));
  bench::report(state, rounds, bound);
  state.counters["mean_abs_err"] = trials > 0 ? abs_err / trials : 0;
  state.counters["within_eps_rate"] =
      trials > 0 ? static_cast<double>(within) / trials : 0;
  state.counters["epsilon"] = epsilon;
}
BENCHMARK(BM_AverageEccentricity)
    ->ArgNames({"n", "eps_x100"})
    ->Args({32, 400})
    ->Args({32, 200})
    ->Args({32, 100})
    ->Args({32, 50})
    ->Args({64, 200})
    ->Args({128, 200})
    ->Iterations(1);

}  // namespace
