// E8 — Lemma 12 vs Lemma 13: element distinctness in a distributed vector.
//
// Reproduces: quantum O~(k^{2/3} D^{1/3} + D) vs classical Theta(k + D)
// measured rounds on the Lemma 13 reduction gadget; one-sided correctness.

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/apps/element_distinctness.hpp"
#include "src/apps/twoparty.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::apps;

void BM_EdVectorQuantumVsClassical(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  util::Rng rng(1);
  auto gadget = distinctness_vector_gadget(k, d, true, rng);

  double quantum = 0, classical = 0;
  int successes = 0, trials = 0;
  for (auto _ : state) {
    classical = static_cast<double>(
        element_distinctness_vector_classical(gadget.graph, gadget.data,
                                              gadget.value_range)
            .cost.rounds);
    quantum = bench::median_of(7, [&] {
      auto result = element_distinctness_vector_quantum(gadget.graph, gadget.data,
                                                        gadget.value_range, rng);
      ++trials;
      if (result.collision.has_value()) ++successes;
      return static_cast<double>(result.cost.rounds);
    });
  }
  // The gadget's vector length is 2k; Lemma 12's bound carries the
  // ceil(log N / log n) + ceil(log k / log n) word factor.
  double kd = static_cast<double>(2 * k), dd = static_cast<double>(d);
  double n = static_cast<double>(gadget.graph.num_nodes());
  double log_n = std::max(1.0, std::log2(n));
  double words = std::ceil(std::log2(static_cast<double>(gadget.value_range) * n) /
                           log_n) +
                 std::ceil(std::log2(kd) / log_n);
  bench::report(state, quantum,
                (std::pow(kd, 2.0 / 3.0) * std::pow(dd, 1.0 / 3.0) + dd) * words);
  state.counters["classical"] = classical;
  state.counters["classical_bound"] = (kd + dd) * words;
  state.counters["quantum_wins"] = quantum < classical ? 1.0 : 0.0;
  state.counters["success_rate"] =
      trials > 0 ? static_cast<double>(successes) / trials : 0.0;
}
BENCHMARK(BM_EdVectorQuantumVsClassical)
    ->ArgNames({"k", "D"})
    ->Args({256, 6})
    ->Args({1024, 6})
    ->Args({4096, 6})
    ->Args({16384, 6})
    ->Args({4096, 3})
    ->Args({16384, 3})
    ->Args({4096, 12})
    ->Iterations(1);

}  // namespace
