// Infra — qlint analyzer throughput.
//
// qlint v2 runs on every CI push over the whole tree (src tools bench
// tests, ~200 TUs), so the token-stream engine has a latency budget of its
// own: these benchmarks pin the cost of lexing and of the full ten-rule
// pass on a synthetic TU whose shape (strings, templates, a lock scope, a
// wire parse, a catch block) exercises every scanner path. Counters report
// tokens and diagnostics so a rule change that silently alters coverage
// shows up next to its cost.

#include <benchmark/benchmark.h>

#include <string>

#include "src/check/lint.hpp"
#include "src/check/token.hpp"

namespace {

using namespace qcongest::check;

/// A synthetic serve-layer TU: every tokenizer path (raw string, block
/// comment, splice, directive) plus one trigger per new rule, suppressed
/// the way real code would be, so lint_source walks every rule's full path.
std::string synthetic_tu() {
  std::string unit =
      "#include \"src/serve/frame.hpp\"\n"
      "#include <vector>\n"
      "// a comment mentioning rand() and std::thread\n"
      "/* block comment\n   spanning lines */\n"
      "const char* kDoc = R\"doc(rand() inside a raw string)doc\";\n"
      "const char* kMsg = \"std::thread in a plain string\";\n"
      "std::unordered_map<std::string,\n"
      "                   std::vector<int>> table_;\n"
      "void wire(const std::uint8_t* p) {\n"
      "  std::uint64_t length = get_u32(p + 4);\n"
      "  if (length > kMaxPayload) return;\n"
      "  std::size_t need = kHeaderBytes + length;\n"
      "  (void)need;\n"
      "}\n"
      "void pump() {\n"
      "  {\n"
      "    std::lock_guard<std::mutex> lock(mutex_);\n"
      "    ++depth_;\n"
      "  }\n"
      "  pool_->submit(task);\n"
      "  try {\n"
      "    run();\n"
      "  } catch (...) {\n"
      "    err_ = std::current_exception();\n"
      "  }\n"
      "}\n";
  std::string out;
  for (int i = 0; i < 16; ++i) out += unit;  // ~500 lines, a realistic TU
  return out;
}

void BM_Tokenize(benchmark::State& state) {
  const std::string source = synthetic_tu();
  std::size_t tokens = 0;
  for (auto _ : state) {
    auto stream = tokenize(source);
    tokens = stream.size();
    benchmark::DoNotOptimize(stream);
  }
  state.counters["tokens"] = static_cast<double>(tokens);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(source.size()));
}
BENCHMARK(BM_Tokenize);

void BM_LintSource(benchmark::State& state) {
  const std::string source = synthetic_tu();
  std::size_t diagnostics = 0;
  for (auto _ : state) {
    auto diags = lint_source("src/serve/synthetic.cpp", source);
    diagnostics = diags.size();
    benchmark::DoNotOptimize(diags);
  }
  // The synthetic TU is written clean: a nonzero count means a rule
  // changed shape, not that the benchmark got slower.
  state.counters["diagnostics"] = static_cast<double>(diagnostics);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(source.size()));
}
BENCHMARK(BM_LintSource);

}  // namespace
