// E4 — Lemma 6: parallel-query mean estimation.
//
// Reproduces: b = O~(sigma / (sqrt(p) eps)) batches and the epsilon-additive
// accuracy guarantee.

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/query/mean_estimation.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::query;

void BM_MeanEstimation(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const double epsilon = static_cast<double>(state.range(1)) / 100.0;
  util::Rng rng(1);

  std::vector<double> population;
  for (int i = 0; i < 10000; ++i) population.push_back(static_cast<double>(i % 200));
  PopulationSampleOracle oracle(population, p);
  double sigma = std::sqrt(oracle.true_variance());

  double batches = 0, abs_err = 0;
  int within = 0, trials = 0;
  for (auto _ : state) {
    batches = bench::median_of(10, [&] {
      auto est = estimate_mean(oracle, epsilon, sigma, rng);
      ++trials;
      double err = std::abs(est.value - oracle.true_mean());
      abs_err += err;
      if (err <= epsilon) ++within;
      return static_cast<double>(est.batches);
    });
  }
  double ratio = sigma / (std::sqrt(static_cast<double>(p)) * epsilon);
  double bound = std::max(1.0, ratio * std::pow(std::log2(ratio + 2.0), 1.5));
  bench::report(state, batches, bound);
  state.counters["mean_abs_err"] = trials > 0 ? abs_err / trials : 0;
  state.counters["within_eps_rate"] =
      trials > 0 ? static_cast<double>(within) / trials : 0;
}
BENCHMARK(BM_MeanEstimation)
    ->ArgNames({"p", "eps_x100"})
    ->Args({1, 200})
    ->Args({4, 200})
    ->Args({16, 200})
    ->Args({64, 200})
    ->Args({16, 400})
    ->Args({16, 100})
    ->Args({16, 50})
    ->Iterations(1);

}  // namespace
