// E2 — Lemma 3: parallel Durr-Hoyer minimum finding.
//
// Reproduces: b = O(ceil(sqrt(k / p))) batches, dropping to
// O(ceil(sqrt(k / (l p)))) with an l-fold degenerate minimum.

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/query/oracle.hpp"
#include "src/query/parallel_minfind.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::query;

void BM_Minfind(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto p = static_cast<std::size_t>(state.range(1));
  util::Rng rng(1);
  double measured = 0;
  for (auto _ : state) {
    measured = bench::median_of(20, [&] {
      std::vector<Value> data(k);
      for (auto& v : data) v = static_cast<Value>(rng.index(1'000'000));
      InMemoryOracle oracle(data, p);
      (void)minfind(oracle, rng);
      return static_cast<double>(oracle.ledger().batches);
    });
  }
  bench::report(state, measured,
                std::ceil(std::sqrt(static_cast<double>(k) / static_cast<double>(p))));
}
BENCHMARK(BM_Minfind)
    ->ArgNames({"k", "p"})
    ->Args({1024, 4})
    ->Args({4096, 4})
    ->Args({16384, 4})
    ->Args({65536, 4})
    ->Args({16384, 1})
    ->Args({16384, 16})
    ->Args({16384, 64})
    ->Iterations(1);

void BM_MinfindDegenerate(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto l = static_cast<std::size_t>(state.range(1));
  const auto p = static_cast<std::size_t>(state.range(2));
  util::Rng rng(2);
  double measured = 0;
  for (auto _ : state) {
    measured = bench::median_of(20, [&] {
      std::vector<Value> data(k, 1000);
      for (std::size_t i = 0; i < l; ++i) data[i] = 1;
      std::span<Value> view(data);
      rng.shuffle(view);
      InMemoryOracle oracle(data, p);
      (void)minfind(oracle, rng);
      return static_cast<double>(oracle.ledger().batches);
    });
  }
  bench::report(state, measured,
                std::ceil(std::sqrt(static_cast<double>(k) /
                                    static_cast<double>(l * p))));
}
BENCHMARK(BM_MinfindDegenerate)
    ->ArgNames({"k", "l", "p"})
    ->Args({16384, 1, 4})
    ->Args({16384, 16, 4})
    ->Args({16384, 256, 4})
    ->Args({16384, 1024, 4})
    ->Iterations(1);

}  // namespace
