// E5 — Lemma 7: distributing a q-qubit register through the network.
//
// Reproduces: measured rounds = D + ceil(q / log n) - 1 for the pipelined
// schedule, vs D * ceil(q / log n) for the naive one (the ablation the
// lemma's proof calls out).

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/framework/distributed_state.hpp"
#include "src/net/generators.hpp"

namespace {

using namespace qcongest;

void BM_DistributeState(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto q = static_cast<std::size_t>(state.range(1));
  net::Graph g = net::path_graph(n);
  net::Engine engine(g, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);

  double pipelined = 0, naive = 0, reverse = 0;
  for (auto _ : state) {
    pipelined = static_cast<double>(framework::distribute_state(engine, tree, q).rounds);
    naive = static_cast<double>(
        framework::distribute_state_unpipelined(engine, tree, q).rounds);
    reverse = static_cast<double>(framework::undistribute_state(engine, tree, q).rounds);
  }
  double words = static_cast<double>(framework::words_for_bits(q, n));
  bench::report(state, pipelined, static_cast<double>(tree.height) + words);
  state.counters["naive"] = naive;
  state.counters["naive_bound"] = static_cast<double>(tree.height) * words;
  state.counters["reverse"] = reverse;
}
BENCHMARK(BM_DistributeState)
    ->ArgNames({"n", "q"})
    ->Args({16, 8})
    ->Args({64, 8})
    ->Args({256, 8})
    ->Args({64, 32})
    ->Args({64, 128})
    ->Args({64, 512})
    ->Iterations(1);

void BM_DistributeStateTopologies(benchmark::State& state) {
  // Same q on topologies with very different diameters: rounds track
  // D + q/log n, not n.
  const auto topology = static_cast<std::size_t>(state.range(0));
  const std::size_t q = 64;
  util::Rng rng(2);
  net::Graph g = [&] {
    switch (topology) {
      case 0:
        return net::path_graph(100);
      case 1:
        return net::binary_tree(100);
      case 2:
        return net::star_graph(100);
      default:
        return net::random_connected_graph(100, 80, rng);
    }
  }();
  net::Engine engine(g, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  double measured = 0;
  for (auto _ : state) {
    measured = static_cast<double>(framework::distribute_state(engine, tree, q).rounds);
  }
  bench::report(state, measured,
                static_cast<double>(tree.height) +
                    static_cast<double>(framework::words_for_bits(q, 100)));
  state.counters["height"] = static_cast<double>(tree.height);
}
BENCHMARK(BM_DistributeStateTopologies)
    ->ArgName("topology")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Iterations(1);

void BM_CongestBandwidthSweep(benchmark::State& state) {
  // CONGEST(B) ablation: widening the per-edge budget to B words shrinks the
  // pipeline term from ceil(q / log n) to ceil(q / (B log n)).
  const auto bandwidth = static_cast<std::size_t>(state.range(0));
  net::Graph g = net::path_graph(40);
  net::Engine engine(g, bandwidth, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  const std::size_t q = 512;
  double measured = 0;
  for (auto _ : state) {
    measured = static_cast<double>(framework::distribute_state(engine, tree, q).rounds);
  }
  double words = static_cast<double>(framework::words_for_bits(q, 40));
  bench::report(state, measured,
                static_cast<double>(tree.height) +
                    std::ceil(words / static_cast<double>(bandwidth)));
}
BENCHMARK(BM_CongestBandwidthSweep)
    ->ArgName("B")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1);

}  // namespace
