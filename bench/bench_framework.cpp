// E6 — Theorem 8 / Corollary 9: the distributed-query framework itself.
//
// Reproduces: per-batch measured rounds vs the theorem's
// (D + p) ceil(q / log n) + p ceil(log k / log n) formula, plus the p-sweep
// ablation showing that p ~ D minimizes total rounds for a fixed query
// budget (the paper's motivation for parallel batches: smaller p idles the
// network, larger p pays the pipeline without reducing the batch count).

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/framework/distributed_oracle.hpp"
#include "src/framework/distributed_state.hpp"
#include "src/net/generators.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/round_profiler.hpp"
#include "src/query/parallel_minfind.hpp"
#include "src/util/combinatorics.hpp"

namespace {

using namespace qcongest;

framework::OracleConfig sum_config(std::size_t k, std::size_t p, std::size_t bits) {
  framework::OracleConfig config;
  config.domain_size = k;
  config.parallelism = p;
  config.value_bits = bits;
  config.combine = [](std::int64_t a, std::int64_t b) { return a + b; };
  config.identity = 0;
  return config;
}

void BM_BatchCost(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto p = static_cast<std::size_t>(state.range(2));
  const auto q = static_cast<std::size_t>(state.range(3));
  net::Graph g = net::path_graph(n);
  net::Engine engine(g, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  std::vector<std::vector<query::Value>> data(n, std::vector<query::Value>(k, 1));

  // Profile the charged batch (not the BFS setup above): per-round traffic
  // plus the Theorem 8 phase spans, deposited into the session run report.
  obs::RoundProfiler profiler;
  engine.set_observer(&profiler);
  framework::OracleConfig config = sum_config(k, p, q);
  config.profiler = &profiler;

  double measured = 0;
  net::RunResult cost;
  for (auto _ : state) {
    profiler.reset();
    framework::DistributedOracle oracle(engine, tree, config, data);
    oracle.charge_batch();
    cost = oracle.total_cost();
    measured = static_cast<double>(cost.rounds);
  }
  engine.set_observer(nullptr);
  double d = static_cast<double>(tree.height);
  double w_val = static_cast<double>(framework::words_for_bits(q, n));
  double w_idx =
      static_cast<double>(framework::words_for_bits(util::ceil_log2(k), n));
  double pd = static_cast<double>(p);
  // Factor 2 for the uncompute mirrors, as in the Theorem 8 constant.
  double bound = 2.0 * ((d + pd) * w_val + pd * w_idx + d);
  bench::report(state, measured, bound);

  const std::string section_name = "BM_BatchCost/n:" + std::to_string(n) +
                                   "/k:" + std::to_string(k) + "/p:" + std::to_string(p) +
                                   "/q:" + std::to_string(q);
  obs::RunReport& report = bench::session_report();
  bool already = false;
  for (const obs::RunReport::Section& s : report.sections()) {
    if (s.name() == section_name) already = true;
  }
  if (!already) {
    obs::RunReport::Section& section = report.add_section(section_name);
    section.set_label("n", std::to_string(n));
    section.set_label("k", std::to_string(k));
    section.set_label("p", std::to_string(p));
    section.set_label("q", std::to_string(q));
    section.set_outcome(measured <= bound);
    section.set_result(cost);
    section.set_profile(profiler);
    obs::MetricsRegistry metrics;
    metrics.set_gauge("measured", measured);
    metrics.set_gauge("bound", bound);
    metrics.set_gauge("ratio", bound > 0 ? measured / bound : 0.0);
    section.set_metrics(metrics);
  }
}
BENCHMARK(BM_BatchCost)
    ->ArgNames({"n", "k", "p", "q"})
    ->Args({32, 1024, 8, 10})
    ->Args({64, 1024, 8, 10})
    ->Args({128, 1024, 8, 10})
    ->Args({64, 1024, 32, 10})
    ->Args({64, 1024, 128, 10})
    ->Args({64, 1024, 8, 40})
    ->Args({64, 1024, 8, 160})
    ->Args({64, 65536, 8, 10})
    ->Iterations(1);

void BM_ParallelismSweep(benchmark::State& state) {
  // Fixed problem (minimum finding over k slots on a path of diameter D);
  // sweep p. Total rounds = b(p) * batch_cost(p) bottoms out near p ~ D.
  const auto p = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 33, k = 4096;
  net::Graph g = net::path_graph(n);  // D = 32

  // Trials are fully independent — own engine, own RNG forked from the
  // trial index — so median_of may fan them out across
  // QCONGEST_BENCH_THREADS workers without changing the reported median.
  double measured = 0, batches = 0;
  std::vector<double> trial_batches(7, 0.0);
  for (auto _ : state) {
    measured = bench::median_of(7, [&](int t) {
      util::Rng rng(3 + static_cast<std::uint64_t>(t));
      net::Engine engine(g, 1, 1);
      net::BfsTree tree = net::build_bfs_tree(engine, 0);
      std::vector<std::vector<query::Value>> data(n,
                                                  std::vector<query::Value>(k, 0));
      for (std::size_t j = 0; j < k; ++j) {
        data[j % n][j] = static_cast<query::Value>(rng.index(10000)) + 1;
      }
      framework::DistributedOracle oracle(engine, tree, sum_config(k, p, 16), data);
      (void)query::minfind(oracle, rng);
      trial_batches[static_cast<std::size_t>(t)] =
          static_cast<double>(oracle.ledger().batches);
      return static_cast<double>(oracle.total_cost().rounds);
    });
    batches = trial_batches[trial_batches.size() / 2];
  }
  state.counters["rounds"] = measured;
  state.counters["batches"] = batches;
}
BENCHMARK(BM_ParallelismSweep)
    ->ArgName("p")
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(32)   // ~ D
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Iterations(1);

}  // namespace
