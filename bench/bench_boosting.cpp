// E16 — success-probability boosting (the paper's "Notation and
// conventions" remark): pushing 2/3 to 1 - delta costs one log(1/delta)
// factor. Sweeps delta for boosted find-one and boosted minimum finding,
// reporting measured batches and empirical failure rates.

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/query/boosted.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::query;

void BM_BoostedFindOne(benchmark::State& state) {
  const double delta = 1.0 / static_cast<double>(state.range(0));
  const std::size_t k = 4096, p = 8;
  util::Rng rng(1);
  double batches = 0;
  int failures = 0, trials = 0;
  for (auto _ : state) {
    batches = bench::median_of(20, [&] {
      std::vector<Value> data(k, 0);
      data[rng.index(k)] = 1;
      InMemoryOracle oracle(data, p);
      auto found = grover_find_one_boosted(
          oracle, [](Value v) { return v == 1; }, delta, rng);
      ++trials;
      if (!found) ++failures;
      return static_cast<double>(oracle.ledger().batches);
    });
  }
  double base = std::sqrt(static_cast<double>(k) / static_cast<double>(p));
  bench::report(state, batches, base * (std::log2(1.0 / delta) + 1.0));
  state.counters["repetition_budget"] = static_cast<double>(boost_repetitions(delta));
  state.counters["failure_rate"] =
      trials > 0 ? static_cast<double>(failures) / trials : 0.0;
}
BENCHMARK(BM_BoostedFindOne)
    ->ArgName("inv_delta")
    ->Arg(3)
    ->Arg(10)
    ->Arg(100)
    ->Arg(10000)
    ->Iterations(1);

void BM_BoostedMinfind(benchmark::State& state) {
  const double delta = 1.0 / static_cast<double>(state.range(0));
  const std::size_t k = 2048, p = 8;
  util::Rng rng(2);
  double batches = 0;
  int failures = 0, trials = 0;
  for (auto _ : state) {
    batches = bench::median_of(15, [&] {
      std::vector<Value> data(k);
      for (auto& v : data) v = static_cast<Value>(rng.index(100000)) + 5;
      std::size_t min_at = rng.index(k);
      data[min_at] = 1;
      InMemoryOracle oracle(data, p);
      ++trials;
      if (minfind_boosted(oracle, delta, rng) != min_at) ++failures;
      return static_cast<double>(oracle.ledger().batches);
    });
  }
  double base = std::sqrt(static_cast<double>(k) / static_cast<double>(p));
  bench::report(state, batches, base * (std::log2(1.0 / delta) + 1.0));
  state.counters["failure_rate"] =
      trials > 0 ? static_cast<double>(failures) / trials : 0.0;
}
BENCHMARK(BM_BoostedMinfind)
    ->ArgName("inv_delta")
    ->Arg(3)
    ->Arg(10)
    ->Arg(100)
    ->Arg(10000)
    ->Iterations(1);

}  // namespace
