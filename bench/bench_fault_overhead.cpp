// E-fault — the price of reliability: measured round overhead of the
// ack/retransmit link layer (src/net/reliable.hpp) as the deterministic
// fault rate rises, for representative communication patterns (BFS-tree
// construction and the Lemma 7 pipelined downcast).
//
// Reports, per fault level: median rounds over the reliable transport, the
// clean-network baseline, their ratio (the overhead curve chaos_run plots),
// and retransmissions per run. The drop rate is the knob; corruption and
// duplication ride along at rate/5 and rate/10 like in tools/chaos_run.cpp.

#include <numeric>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/net/bfs.hpp"
#include "src/net/fault.hpp"
#include "src/net/generators.hpp"
#include "src/net/pipeline.hpp"

namespace {

using namespace qcongest;

net::FaultPlan plan_for(double rate_permille, std::uint64_t seed) {
  net::FaultPlan plan;
  plan.link.drop = rate_permille / 1000.0;
  plan.link.corrupt = plan.link.drop / 5.0;
  plan.link.duplicate = plan.link.drop / 10.0;
  plan.seed = seed;
  return plan;
}

net::Engine make_engine(const net::Graph& graph, double rate_permille,
                        std::uint64_t seed) {
  net::Engine engine(graph, 1, seed);
  net::FaultPlan plan = plan_for(rate_permille, seed * 31 + 7);
  if (plan.active()) engine.set_fault_plan(plan);
  engine.set_transport(net::Transport::kReliable);
  return engine;
}

void BM_FaultOverheadBfs(benchmark::State& state) {
  const auto rate_permille = static_cast<double>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  net::Graph g = net::binary_tree(n);

  // Per-trial seeds derive from the trial index, so median_of can run the
  // trials concurrently (QCONGEST_BENCH_THREADS) with unchanged results.
  double rounds = 0, retrans = 0;
  std::vector<double> trial_retrans(5, 0.0);
  for (auto _ : state) {
    rounds = bench::median_of(5, [&](int t) {
      net::Engine engine =
          make_engine(g, rate_permille, static_cast<std::uint64_t>(t) + 1);
      net::BfsTree tree = net::build_bfs_tree(engine, 0);
      trial_retrans[static_cast<std::size_t>(t)] =
          static_cast<double>(tree.cost.retransmissions);
      return static_cast<double>(tree.cost.rounds);
    });
    retrans = trial_retrans[trial_retrans.size() / 2];
  }
  net::Engine clean_engine = make_engine(g, 0.0, 1);
  double clean = static_cast<double>(net::build_bfs_tree(clean_engine, 0).cost.rounds);
  bench::report(state, rounds, clean);
  state.counters["retransmissions"] = retrans;
}
BENCHMARK(BM_FaultOverheadBfs)
    ->ArgNames({"drop_permille", "n"})
    ->Args({0, 31})
    ->Args({10, 31})
    ->Args({20, 31})
    ->Args({50, 31})
    ->Args({100, 31})
    ->Args({50, 63})
    ->Args({100, 63});

void BM_FaultOverheadDowncast(benchmark::State& state) {
  const auto rate_permille = static_cast<double>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto words = static_cast<std::size_t>(state.range(2));
  net::Graph g = net::binary_tree(n);
  std::vector<std::int64_t> payload(words);
  std::iota(payload.begin(), payload.end(), 1);

  double rounds = 0, retrans = 0;
  std::vector<double> trial_retrans(5, 0.0);
  for (auto _ : state) {
    rounds = bench::median_of(5, [&](int t) {
      net::Engine engine =
          make_engine(g, rate_permille, static_cast<std::uint64_t>(t) + 1);
      net::BfsTree tree = net::build_bfs_tree(engine, 0);
      auto down = net::pipelined_downcast(engine, tree, payload, /*quantum=*/false);
      trial_retrans[static_cast<std::size_t>(t)] =
          static_cast<double>(down.cost.retransmissions);
      return static_cast<double>(down.cost.rounds);
    });
    retrans = trial_retrans[trial_retrans.size() / 2];
  }
  net::Engine clean_engine = make_engine(g, 0.0, 1);
  net::BfsTree clean_tree = net::build_bfs_tree(clean_engine, 0);
  double clean = static_cast<double>(
      net::pipelined_downcast(clean_engine, clean_tree, payload, false).cost.rounds);
  bench::report(state, rounds, clean);
  state.counters["retransmissions"] = retrans;
}
BENCHMARK(BM_FaultOverheadDowncast)
    ->ArgNames({"drop_permille", "n", "words"})
    ->Args({0, 31, 64})
    ->Args({10, 31, 64})
    ->Args({20, 31, 64})
    ->Args({50, 31, 64})
    ->Args({100, 31, 64})
    ->Args({50, 31, 256});

// The retransmission-backoff satellite: at a punishing drop rate, sweep the
// backoff cap (ReliableParams::rto_cap). The doubling RTO is capped there
// and deterministically jittered per link, so repeated losses neither back
// off unboundedly (a capped link retries within rto_cap rounds of any
// delivery) nor resynchronise into lockstep retry bursts. A tight cap buys
// rounds with duplicate traffic; a loose cap the reverse — the sweep shows
// the curve the default (128) sits on.
void BM_FaultOverheadBackoffCap(benchmark::State& state) {
  const auto rate_permille = static_cast<double>(state.range(0));
  const auto cap = static_cast<std::size_t>(state.range(1));
  net::Graph g = net::binary_tree(31);

  double rounds = 0, retrans = 0;
  std::vector<double> trial_retrans(5, 0.0);
  for (auto _ : state) {
    rounds = bench::median_of(5, [&](int t) {
      net::Engine engine(g, 1, static_cast<std::uint64_t>(t) + 1);
      net::FaultPlan plan =
          plan_for(rate_permille, static_cast<std::uint64_t>(t) * 31 + 7);
      engine.set_fault_plan(plan);
      net::ReliableParams params;
      params.rto_cap = cap;
      engine.set_transport(net::Transport::kReliable, params);
      net::BfsTree tree = net::build_bfs_tree(engine, 0);
      trial_retrans[static_cast<std::size_t>(t)] =
          static_cast<double>(tree.cost.retransmissions);
      return static_cast<double>(tree.cost.rounds);
    });
    retrans = trial_retrans[trial_retrans.size() / 2];
  }
  net::Engine clean_engine = make_engine(g, 0.0, 1);
  double clean = static_cast<double>(net::build_bfs_tree(clean_engine, 0).cost.rounds);
  bench::report(state, rounds, clean);
  state.counters["retransmissions"] = retrans;
}
BENCHMARK(BM_FaultOverheadBackoffCap)
    ->ArgNames({"drop_permille", "rto_cap"})
    ->Args({100, 8})
    ->Args({100, 32})
    ->Args({100, 128})
    ->Args({100, 1024});

}  // namespace
