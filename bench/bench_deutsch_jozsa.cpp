// E10 — Theorem 17 vs Theorem 18: distributed Deutsch–Jozsa.
//
// Reproduces: exact quantum O(D ceil(log k / log n)) vs exact classical
// Theta(k + D) measured rounds — the exponential separation in k — plus the
// bounded-error classical sampler of the closing remark (O(D), errs on
// balanced inputs with probability 2^-samples).

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/apps/deutsch_jozsa.hpp"
#include "src/apps/twoparty.hpp"
#include "src/util/combinatorics.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::apps;

void BM_DeutschJozsa(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  util::Rng rng(1);
  auto gadget = deutsch_jozsa_gadget(k, d, /*balanced=*/true, rng);

  // Also measure the induced two-party communication across the middle of
  // the path — the quantity Theorem 18's reduction lower-bounds.
  NetOptions options;
  options.tracked_cut = path_gadget_cut(gadget.graph.num_nodes(), d / 2);

  double quantum = 0, classical = 0, sampling = 0;
  double quantum_cut = 0, classical_cut = 0;
  bool all_exact = true;
  for (auto _ : state) {
    auto q = deutsch_jozsa_quantum(gadget.graph, gadget.data, options);
    quantum = static_cast<double>(q.cost.rounds);
    quantum_cut = static_cast<double>(q.cost.cut_words);
    all_exact = all_exact && q.verdict == query::DjVerdict::kBalanced;
    auto c = deutsch_jozsa_classical_exact(gadget.graph, gadget.data, options);
    classical = static_cast<double>(c.cost.rounds);
    classical_cut = static_cast<double>(c.cost.cut_words);
    all_exact = all_exact && c.verdict == query::DjVerdict::kBalanced;
    sampling = static_cast<double>(
        deutsch_jozsa_classical_sampling(gadget.graph, gadget.data, 8, rng)
            .cost.rounds);
  }
  double n = static_cast<double>(gadget.graph.num_nodes());
  double bound = static_cast<double>(d) *
                 std::max<double>(1.0, std::ceil(static_cast<double>(util::ceil_log2(k)) /
                                                 static_cast<double>(util::ceil_log2(
                                                     static_cast<std::uint64_t>(n)))));
  bench::report(state, quantum, bound);
  state.counters["classical_exact"] = classical;
  state.counters["classical_bound"] = static_cast<double>(k / 2 + 1 + d);
  state.counters["classical_sampling"] = sampling;
  state.counters["exact_correct"] = all_exact ? 1.0 : 0.0;
  state.counters["cut_words_quantum"] = quantum_cut;
  state.counters["cut_words_classical"] = classical_cut;
}
BENCHMARK(BM_DeutschJozsa)
    ->ArgNames({"k", "D"})
    ->Args({64, 8})
    ->Args({256, 8})
    ->Args({1024, 8})
    ->Args({4096, 8})
    ->Args({16384, 8})
    ->Args({1024, 4})
    ->Args({1024, 16})
    ->Args({1024, 32})
    ->Iterations(1);

}  // namespace
