// E15 — Lemmas 27–30: the non-oracle techniques of Section 6.
//
// Reproduces: amplification iterate cost O(R + D), amplitude amplification
// O((R + D) log(1/delta) / sqrt(p)), phase estimation O(R/eps log(1/delta)
// + D), amplitude estimation O((R + D) sqrt(p_max)/eps log(1/delta)), all
// measured from real message schedules.

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/framework/non_oracle.hpp"
#include "src/net/generators.hpp"
#include "src/net/pipeline.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::framework;

DistributedSubroutine make_subroutine(net::Engine& engine, const net::BfsTree& tree,
                                      double p, std::size_t r) {
  DistributedSubroutine s;
  s.success_probability = p;
  s.run = [&engine, &tree, r]() {
    std::vector<std::int64_t> payload(r, 0);
    return net::pipelined_downcast(engine, tree, payload, true).cost;
  };
  return s;
}

void BM_AmplificationIterate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  net::Graph g = net::path_graph(n);
  net::Engine engine(g, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  auto sub = make_subroutine(engine, tree, 0.1, r);
  double rounds = 0;
  for (auto _ : state) {
    rounds = static_cast<double>(amplification_iterate(engine, tree, sub).rounds);
  }
  bench::report(state, rounds,
                static_cast<double>(r) + static_cast<double>(tree.height));
}
BENCHMARK(BM_AmplificationIterate)
    ->ArgNames({"n", "R"})
    ->Args({16, 4})
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({64, 16})
    ->Args({64, 64})
    ->Iterations(1);

void BM_AmplitudeAmplification(benchmark::State& state) {
  const auto p_x1000 = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  net::Graph g = net::path_graph(32);
  net::Engine engine(g, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  auto sub = make_subroutine(engine, tree, static_cast<double>(p_x1000) / 1000.0, 4);
  double rounds = 0;
  int successes = 0, trials = 0;
  for (auto _ : state) {
    rounds = bench::median_of(5, [&] {
      auto result = amplitude_amplify(engine, tree, sub, 0.1, rng);
      ++trials;
      if (result.success) ++successes;
      return static_cast<double>(result.cost.rounds);
    });
  }
  double p = static_cast<double>(p_x1000) / 1000.0;
  bench::report(state, rounds,
                (4.0 + static_cast<double>(tree.height)) / std::sqrt(p) *
                    std::log2(1.0 / 0.1));
  state.counters["success_rate"] =
      trials > 0 ? static_cast<double>(successes) / trials : 0.0;
}
BENCHMARK(BM_AmplitudeAmplification)
    ->ArgName("p_x1000")
    ->Arg(200)
    ->Arg(50)
    ->Arg(12)
    ->Arg(3)
    ->Iterations(1);

void BM_PhaseEstimation(benchmark::State& state) {
  const auto eps_x1000 = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  net::Graph g = net::path_graph(16);
  net::Engine engine(g, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  const double true_theta = 2.0;
  const std::size_t r = 3;
  auto apply_u = [&]() {
    std::vector<std::int64_t> payload(r, 0);
    return net::pipelined_downcast(engine, tree, payload, true).cost;
  };
  double rounds = 0, err = 0;
  for (auto _ : state) {
    double eps = static_cast<double>(eps_x1000) / 1000.0;
    auto result = phase_estimate(engine, tree, apply_u, true_theta, eps, 0.1, rng);
    rounds = static_cast<double>(result.cost.rounds);
    err = std::abs(result.theta - true_theta);
  }
  double eps = static_cast<double>(eps_x1000) / 1000.0;
  bench::report(state, rounds,
                static_cast<double>(r) / eps * std::log2(1.0 / 0.1) +
                    static_cast<double>(tree.height));
  state.counters["theta_error"] = err;
  state.counters["epsilon"] = eps;
}
BENCHMARK(BM_PhaseEstimation)
    ->ArgName("eps_x1000")
    ->Arg(500)
    ->Arg(250)
    ->Arg(125)
    ->Arg(62)
    ->Iterations(1);

void BM_AmplitudeEstimation(benchmark::State& state) {
  const auto eps_x1000 = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  net::Graph g = net::path_graph(12);
  net::Engine engine(g, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  auto sub = make_subroutine(engine, tree, 0.2, 2);
  double rounds = 0, err = 0;
  for (auto _ : state) {
    double eps = static_cast<double>(eps_x1000) / 1000.0;
    auto result = amplitude_estimate(engine, tree, sub, 0.5, eps, 0.1, rng);
    rounds = static_cast<double>(result.cost.rounds);
    err = std::abs(result.p_estimate - 0.2);
  }
  double eps = static_cast<double>(eps_x1000) / 1000.0;
  bench::report(state, rounds,
                (2.0 + static_cast<double>(tree.height)) * std::sqrt(0.5) / eps *
                    std::log2(1.0 / 0.1));
  state.counters["p_error"] = err;
  state.counters["epsilon"] = eps;
}
BENCHMARK(BM_AmplitudeEstimation)
    ->ArgName("eps_x1000")
    ->Arg(200)
    ->Arg(100)
    ->Arg(50)
    ->Iterations(1);

}  // namespace
