// E3 — Lemma 5: parallel element distinctness.
//
// Reproduces: b = O(ceil((k/p)^{2/3})) batches for the rebalanced Johnson
// walk, plus the success-rate check that the walk stays above 2/3.

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/query/element_distinctness.hpp"
#include "src/query/oracle.hpp"

namespace {

using namespace qcongest;
using namespace qcongest::query;

std::vector<Value> one_collision_instance(std::size_t k, util::Rng& rng) {
  std::vector<Value> data(k);
  for (std::size_t i = 0; i < k; ++i) data[i] = static_cast<Value>(2 * i + 1);
  std::size_t a = rng.index(k), b = rng.index(k);
  while (b == a) b = rng.index(k);
  data[b] = data[a];
  return data;
}

void BM_ElementDistinctness(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto p = static_cast<std::size_t>(state.range(1));
  util::Rng rng(1);
  double measured = 0;
  int successes = 0, trials = 0;
  for (auto _ : state) {
    measured = bench::median_of(15, [&] {
      InMemoryOracle oracle(one_collision_instance(k, rng), p);
      auto pair = element_distinctness(oracle, rng);
      ++trials;
      if (pair) ++successes;
      return static_cast<double>(oracle.ledger().batches);
    });
  }
  double bound = std::ceil(std::pow(static_cast<double>(k) / static_cast<double>(p),
                                    2.0 / 3.0));
  bench::report(state, measured, bound);
  state.counters["schedule"] =
      static_cast<double>(element_distinctness_schedule_batches(k, p));
  state.counters["success_rate"] =
      trials > 0 ? static_cast<double>(successes) / trials : 0.0;
}
BENCHMARK(BM_ElementDistinctness)
    ->ArgNames({"k", "p"})
    ->Args({512, 2})
    ->Args({2048, 2})
    ->Args({8192, 2})
    ->Args({8192, 8})
    ->Args({8192, 32})
    ->Args({8192, 2048})  // large-p regime: full classical readout
    ->Iterations(1);

}  // namespace
